/**
 * @file
 * Unit tests of the DRAM cache, firmware model, SSD facade and the
 * NOR-interface PRAM.
 */

#include <gtest/gtest.h>

#include <map>

#include "flash/dram_cache.hh"
#include "flash/firmware.hh"
#include "flash/nor_pram.hh"
#include "flash/ssd.hh"

namespace dramless
{
namespace flash
{
namespace
{

// --------------------------- DramCache ----------------------------

DramCacheConfig
tinyCache()
{
    DramCacheConfig cfg;
    cfg.capacityBytes = 4 * 16384; // four pages
    return cfg;
}

TEST(DramCacheTest, LruEvictionOrder)
{
    DramCache c(tinyCache(), "c");
    for (std::uint64_t lpn = 0; lpn < 4; ++lpn)
        EXPECT_FALSE(c.insert(lpn, false).evicted);
    // Touch page 0 so page 1 becomes LRU.
    EXPECT_TRUE(c.lookup(0));
    auto ev = c.insert(99, false);
    EXPECT_TRUE(ev.evicted);
    EXPECT_EQ(ev.lpn, 1u);
    EXPECT_FALSE(ev.dirty);
}

TEST(DramCacheTest, DirtyTrackingAndWatermark)
{
    DramCache c(tinyCache(), "c"); // watermark 0.5 => 2 pages
    c.insert(0, true);
    EXPECT_FALSE(c.overDirtyWatermark());
    c.insert(1, true);
    c.insert(2, true);
    EXPECT_TRUE(c.overDirtyWatermark());
    c.markClean(0);
    c.markClean(1);
    EXPECT_FALSE(c.overDirtyWatermark());
    EXPECT_EQ(c.dirtyPages(), 1u);
}

TEST(DramCacheTest, ReinsertUpgradesToDirty)
{
    DramCache c(tinyCache(), "c");
    c.insert(5, false);
    EXPECT_EQ(c.dirtyPages(), 0u);
    c.insert(5, true);
    EXPECT_EQ(c.dirtyPages(), 1u);
    EXPECT_EQ(c.residentPages(), 1u);
}

TEST(DramCacheTest, AccessTimeScalesWithBytes)
{
    DramCache c(tinyCache(), "c");
    Tick t1 = c.accessTime(16384);
    Tick t2 = c.accessTime(32768);
    EXPECT_GT(t2, t1);
    EXPECT_GT(t1, c.config().accessLatency);
}

TEST(DramCacheTest, HitRateStat)
{
    DramCache c(tinyCache(), "c");
    c.insert(1, false);
    c.lookup(1);
    c.lookup(2);
    EXPECT_DOUBLE_EQ(c.cacheStats().hitRate(), 0.5);
}

TEST(DramCacheTest, WatermarkZeroTripsOnFirstDirtyPage)
{
    DramCacheConfig cfg = tinyCache();
    cfg.dirtyWatermark = 0.0;
    DramCache c(cfg, "c");
    EXPECT_FALSE(c.overDirtyWatermark()); // empty cache: nothing dirty
    c.insert(0, false);
    EXPECT_FALSE(c.overDirtyWatermark()); // clean pages don't count
    c.insert(1, true);
    EXPECT_TRUE(c.overDirtyWatermark());
    c.markClean(1);
    EXPECT_FALSE(c.overDirtyWatermark());
}

TEST(DramCacheTest, WatermarkOneNeverTrips)
{
    DramCacheConfig cfg = tinyCache();
    cfg.dirtyWatermark = 1.0;
    DramCache c(cfg, "c");
    for (std::uint64_t lpn = 0; lpn < 4; ++lpn)
        c.insert(lpn, true);
    EXPECT_EQ(c.dirtyPages(), 4u); // every page dirty
    EXPECT_FALSE(c.overDirtyWatermark());
}

TEST(DramCacheTest, RefreshCleanEntryToDirtyCountsForWatermark)
{
    DramCacheConfig cfg = tinyCache();
    cfg.dirtyWatermark = 0.0;
    DramCache c(cfg, "c");
    c.insert(7, false);
    EXPECT_FALSE(c.overDirtyWatermark());
    // Re-inserting the resident clean page as dirty must upgrade it
    // (not be dropped as a duplicate) and trip the zero watermark.
    c.insert(7, true);
    EXPECT_EQ(c.dirtyPages(), 1u);
    EXPECT_EQ(c.residentPages(), 1u);
    EXPECT_TRUE(c.overDirtyWatermark());
    // Upgrading again must not double-count.
    c.insert(7, true);
    EXPECT_EQ(c.dirtyPages(), 1u);
}

// --------------------------- Firmware -----------------------------

TEST(FirmwareTest, QueuesBeyondCoreCount)
{
    FirmwareConfig cfg{2, fromUs(3)};
    FirmwareModel fw(cfg, "fw");
    Tick a = fw.service(0);
    Tick b = fw.service(0);
    Tick c = fw.service(0);
    EXPECT_EQ(a, fromUs(3));
    EXPECT_EQ(b, fromUs(3)); // second core
    EXPECT_EQ(c, fromUs(6)); // queued behind the first
    EXPECT_EQ(fw.numRequests(), 3u);
    EXPECT_EQ(fw.queueTicks(), fromUs(3));
}

TEST(FirmwareTest, OracleIsFree)
{
    FirmwareModel fw(FirmwareConfig::oracle(), "oracle");
    EXPECT_EQ(fw.service(1234), 1234u);
    EXPECT_EQ(fw.busyTicks(), 0u);
}

TEST(FirmwareTest, TraditionalPresetMatchesPaper)
{
    FirmwareConfig cfg = FirmwareConfig::traditionalSsd();
    EXPECT_EQ(cfg.cores, 3u); // 3-core 500 MHz embedded ARM
    // Firmware execution far exceeds the ~100 ns PRAM read: the root
    // cause of Figure 7's degradation.
    EXPECT_GT(cfg.perRequestLatency, fromNs(100) * 10);
}

// ------------------------------ Ssd -------------------------------

class SsdTest : public ::testing::Test
{
  protected:
    std::unique_ptr<Ssd>
    make(SsdConfig cfg)
    {
        // Shrink the array for fast tests.
        cfg.array.channels = 2;
        cfg.array.diesPerChannel = 2;
        cfg.array.blocksPerDie = 16;
        cfg.array.pagesPerBlock = 16;
        cfg.buffer.capacityBytes =
            std::uint64_t(8) * cfg.buffer.pageBytes;
        auto ssd = std::make_unique<Ssd>(eq, cfg, "ssd");
        ssd->setCallback([this](const ctrl::MemResponse &resp) {
            done[resp.id] = resp.completedAt;
        });
        return ssd;
    }

    EventQueue eq;
    std::map<std::uint64_t, Tick> done;
};

TEST_F(SsdTest, ColdReadPaysFirmwareFlashAndDram)
{
    auto ssd = make(SsdConfig::slc());
    ctrl::MemRequest req;
    req.kind = ctrl::ReqKind::read;
    req.addr = 0;
    req.size = 4096; // sub-page read still moves a whole page
    std::uint64_t id = ssd->enqueue(req);
    eq.run();
    ASSERT_TRUE(done.count(id));
    // firmware (3 us) + SLC sense (25 us) + transfer + DRAM access.
    EXPECT_GT(done[id], fromUs(28));
    EXPECT_LT(done[id], fromUs(60));
}

TEST_F(SsdTest, WarmReadServedFromBuffer)
{
    auto ssd = make(SsdConfig::slc());
    ctrl::MemRequest req;
    req.kind = ctrl::ReqKind::read;
    req.addr = 0;
    req.size = 4096;
    ssd->enqueue(req);
    eq.run();
    Tick t0 = eq.curTick();
    std::uint64_t id = ssd->enqueue(req);
    eq.run();
    // firmware + DRAM only: no flash sense.
    EXPECT_LT(done[id] - t0, fromUs(10));
    EXPECT_GT(ssd->cacheStats().hits, 0u);
}

TEST_F(SsdTest, BufferedWriteIsDramFast)
{
    auto ssd = make(SsdConfig::slc());
    ctrl::MemRequest req;
    req.kind = ctrl::ReqKind::write;
    req.addr = 0;
    req.size = 16384;
    std::uint64_t id = ssd->enqueue(req);
    eq.run();
    EXPECT_LT(done[id], fromUs(10)); // no 300 us program on the path
}

TEST_F(SsdTest, SustainedWritesThrottleToFlashSpeed)
{
    auto ssd = make(SsdConfig::slc());
    // Dirty the buffer beyond the watermark (8 pages, watermark 4).
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 12; ++i) {
        ctrl::MemRequest req;
        req.kind = ctrl::ReqKind::write;
        req.addr = std::uint64_t(i) * 16384;
        req.size = 16384;
        ids.push_back(ssd->enqueue(req));
    }
    eq.run();
    EXPECT_GT(ssd->ssdStats().bufferThrottledWrites, 0u);
    // Throttled writes waited for 300 us flash programs; evictions
    // drain dirty pages, so not every write throttles — but some did.
    Tick slowest = 0;
    for (std::uint64_t id : ids)
        slowest = std::max(slowest, done[id]);
    EXPECT_GT(slowest, fromUs(300));
}

TEST_F(SsdTest, WatermarkZeroThrottlesEveryBufferedWrite)
{
    // Regression: the watermark used to be checked before the write
    // being serviced was inserted dirty, so dirtyWatermark = 0.0 let
    // the first write through unthrottled (n-1 throttles for n
    // writes). The write in flight counts: every write throttles.
    SsdConfig cfg = SsdConfig::slc();
    cfg.buffer.dirtyWatermark = 0.0;
    auto ssd = make(cfg);
    for (int i = 0; i < 3; ++i) {
        ctrl::MemRequest req;
        req.kind = ctrl::ReqKind::write;
        req.addr = std::uint64_t(i) * 16384;
        req.size = 16384;
        ssd->enqueue(req);
    }
    eq.run();
    EXPECT_EQ(ssd->ssdStats().bufferThrottledWrites, 3u);
}

TEST_F(SsdTest, WatermarkOneNeverThrottles)
{
    SsdConfig cfg = SsdConfig::slc();
    cfg.buffer.dirtyWatermark = 1.0;
    auto ssd = make(cfg); // 8-page buffer
    for (int i = 0; i < 12; ++i) { // spills the buffer
        ctrl::MemRequest req;
        req.kind = ctrl::ReqKind::write;
        req.addr = std::uint64_t(i) * 16384;
        req.size = 16384;
        ssd->enqueue(req);
    }
    eq.run();
    EXPECT_EQ(ssd->ssdStats().bufferThrottledWrites, 0u);
    // Capacity pressure still drains dirty victims through eviction.
    EXPECT_GT(ssd->cacheStats().dirtyEvictions, 0u);
}

TEST_F(SsdTest, MultiPageRequestCompletesOnce)
{
    auto ssd = make(SsdConfig::slc());
    ctrl::MemRequest req;
    req.kind = ctrl::ReqKind::read;
    req.addr = 0;
    req.size = 4 * 16384;
    std::uint64_t id = ssd->enqueue(req);
    eq.run();
    EXPECT_EQ(done.size(), 1u);
    EXPECT_TRUE(done.count(id));
    EXPECT_EQ(ssd->ssdStats().bytesRead, 4u * 16384u);
}

TEST_F(SsdTest, OptanePresetHasNoEraseAndSmallPages)
{
    SsdConfig cfg = SsdConfig::optane();
    EXPECT_EQ(cfg.array.media.pageBytes, 4096u);
    EXPECT_EQ(cfg.array.media.eraseLatency, 0u);
    auto ssd = make(cfg);
    ctrl::MemRequest req;
    req.kind = ctrl::ReqKind::read;
    req.addr = 0;
    req.size = 4096;
    std::uint64_t id = ssd->enqueue(req);
    eq.run();
    // PRAM media: far faster than the SLC cold read.
    EXPECT_LT(done[id], fromUs(12));
}

TEST_F(SsdTest, PopulateAvoidsLaterMappingCost)
{
    auto ssd = make(SsdConfig::slc());
    ssd->populate(0, 16384 * 4);
    EXPECT_EQ(ssd->ftlStats().hostPagesWritten, 0u);
}

// ----------------------------- NorPram ----------------------------

TEST(NorPramTest, ReadLatencyScalesWithWords)
{
    EventQueue eq;
    NorPram nor(eq, NorPramConfig{}, "nor");
    Tick t32 = nor.read(0, 32);
    Tick setup = NorPramConfig{}.accessSetup;
    Tick cycle = NorPramConfig{}.busCyclePerWord;
    EXPECT_EQ(t32, setup + 16 * cycle);
    // Slower than the 3x nm PRAM's row-buffer-hit reads, and the
    // single bus serializes across the whole device.
    EXPECT_GT(t32, fromNs(100));
    EXPECT_LT(t32, fromNs(600));
}

TEST(NorPramTest, ReadWhileWriteAcrossPartitions)
{
    EventQueue eq;
    NorPramConfig cfg;
    NorPram nor(eq, cfg, "nor");
    std::uint64_t quarter = cfg.capacityBytes / cfg.partitions;
    Tick w = nor.write(0, 32);           // program in partition 0
    Tick r_other = nor.read(quarter, 32); // partition 1: unblocked
    EXPECT_LT(r_other, w);
    // A read in the programming partition must wait.
    Tick r_same = nor.read(64, 32);
    EXPECT_GE(r_same, w);
}

TEST(NorPramTest, WritesAreFarSlowerThanReads)
{
    EventQueue eq;
    NorPram nor(eq, NorPramConfig{}, "nor");
    Tick r = nor.read(0, 32);
    Tick w = nor.write(64, 32, r);
    // A buffered word program costs ~7.5 us vs a sub-us read.
    EXPECT_GT(w - r, 10 * r);
    // Streaming a 512 B region costs ~120 us of program time.
    Tick w512 = nor.write(1024, 512, w);
    EXPECT_GT(w512 - w, fromUs(100));
}

TEST(NorPramTest, SingleInterfaceSerializesEverything)
{
    EventQueue eq;
    NorPram nor(eq, NorPramConfig{}, "nor");
    Tick a = nor.read(0, 32);
    Tick b = nor.read(1024, 32);
    EXPECT_GE(b, a + NorPramConfig{}.accessSetup);
    EXPECT_EQ(nor.norStats().reads, 2u);
}

TEST(NorPramTest, DeviceWriteBandwidthTwoOrdersWorseThanFlash)
{
    // Section VI-A: NOR write bandwidth is orders of magnitude worse
    // than flash's 16 KiB page-parallel programming (54 MB/s for
    // SLC); the single-interface NOR manages only a few MB/s.
    NorPramConfig cfg;
    double nor_bw = 32.0 / toSec(cfg.programPer32B) / 1e6; // MB/s
    EXPECT_LT(nor_bw, 6.0);
    EXPECT_GT(nor_bw, 1.0);
}

} // namespace
} // namespace flash
} // namespace dramless
