/**
 * @file
 * Parameterized property tests over the NVM media presets: SSD
 * behavioural invariants that must hold for SLC, MLC, TLC, the
 * PRAM-SSD and the page-interface PRAM alike.
 */

#include <gtest/gtest.h>

#include <map>

#include "flash/ssd.hh"

namespace dramless
{
namespace flash
{
namespace
{

class MediaParamTest : public ::testing::TestWithParam<FlashTiming>
{
  protected:
    std::unique_ptr<Ssd>
    make()
    {
        SsdConfig cfg;
        cfg.array.media = GetParam();
        cfg.array.channels = 2;
        cfg.array.diesPerChannel = 2;
        cfg.array.blocksPerDie = 32;
        cfg.array.pagesPerBlock = 32;
        cfg.buffer.pageBytes = GetParam().pageBytes;
        cfg.buffer.capacityBytes =
            std::uint64_t(8) * GetParam().pageBytes;
        auto ssd = std::make_unique<Ssd>(eq, cfg, "ssd");
        ssd->setCallback([this](const ctrl::MemResponse &r) {
            done[r.id] = r.completedAt;
        });
        return ssd;
    }

    EventQueue eq;
    std::map<std::uint64_t, Tick> done;
};

TEST_P(MediaParamTest, ColdReadSlowerThanWarmRead)
{
    auto ssd = make();
    std::uint32_t page = GetParam().pageBytes;
    ctrl::MemRequest req;
    req.kind = ctrl::ReqKind::read;
    req.addr = 0;
    req.size = page;
    std::uint64_t cold = ssd->enqueue(req);
    eq.run();
    Tick t0 = eq.curTick();
    std::uint64_t warm = ssd->enqueue(req);
    eq.run();
    EXPECT_GT(done[cold], done[warm] - t0)
        << GetParam().label;
}

TEST_P(MediaParamTest, SubPageWritePaysReadModifyWrite)
{
    auto ssd = make();
    ctrl::MemRequest req;
    req.kind = ctrl::ReqKind::write;
    req.addr = 0;
    req.size = 32; // far below the page size
    ssd->enqueue(req);
    eq.run();
    EXPECT_EQ(ssd->ssdStats().rmwReads, 1u) << GetParam().label;
    EXPECT_GE(ssd->arrayStats().pageReads, 1u);
}

TEST_P(MediaParamTest, FullPageWriteAvoidsRmw)
{
    auto ssd = make();
    ctrl::MemRequest req;
    req.kind = ctrl::ReqKind::write;
    req.addr = 0;
    req.size = GetParam().pageBytes;
    ssd->enqueue(req);
    eq.run();
    EXPECT_EQ(ssd->ssdStats().rmwReads, 0u) << GetParam().label;
}

TEST_P(MediaParamTest, SustainedWritesEventuallyReachTheArray)
{
    auto ssd = make();
    std::uint32_t page = GetParam().pageBytes;
    for (int i = 0; i < 24; ++i) {
        ctrl::MemRequest req;
        req.kind = ctrl::ReqKind::write;
        req.addr = std::uint64_t(i) * page;
        req.size = page;
        ssd->enqueue(req);
    }
    eq.run();
    EXPECT_GT(ssd->arrayStats().pagePrograms, 0u)
        << GetParam().label;
}

TEST_P(MediaParamTest, ReadLatencyOrdersWithMediaSpeed)
{
    // Whatever the media, a cold page read costs at least the media
    // sense latency plus the channel transfer.
    auto ssd = make();
    ctrl::MemRequest req;
    req.kind = ctrl::ReqKind::read;
    req.addr = GetParam().pageBytes; // untouched page
    req.size = GetParam().pageBytes;
    std::uint64_t id = ssd->enqueue(req);
    eq.run();
    EXPECT_GE(done[id], GetParam().readLatency);
}

INSTANTIATE_TEST_SUITE_P(
    AllMedia, MediaParamTest,
    ::testing::Values(FlashTiming::slc(), FlashTiming::mlc(),
                      FlashTiming::tlc(), FlashTiming::optane(),
                      FlashTiming::pagePram()),
    [](const ::testing::TestParamInfo<FlashTiming> &info) {
        std::string label = info.param.label;
        for (auto &c : label) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return label;
    });

} // namespace
} // namespace flash
} // namespace dramless
