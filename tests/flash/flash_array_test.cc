/**
 * @file
 * Unit tests of media timing presets and the flash array resource
 * model.
 */

#include <gtest/gtest.h>

#include "flash/flash_device.hh"

namespace dramless
{
namespace flash
{
namespace
{

TEST(FlashTimingTest, TableOnePresets)
{
    FlashTiming slc = FlashTiming::slc();
    EXPECT_EQ(slc.readLatency, fromUs(25));
    EXPECT_EQ(slc.programLatency, fromUs(300));
    EXPECT_EQ(slc.eraseLatency, fromUs(2000));
    EXPECT_EQ(slc.pageBytes, 16384u);

    FlashTiming mlc = FlashTiming::mlc();
    EXPECT_EQ(mlc.readLatency, fromUs(50));
    EXPECT_EQ(mlc.programLatency, fromUs(800));
    EXPECT_EQ(mlc.eraseLatency, fromUs(3500));

    FlashTiming tlc = FlashTiming::tlc();
    EXPECT_EQ(tlc.readLatency, fromUs(80));
    EXPECT_EQ(tlc.programLatency, fromUs(1250));
    EXPECT_EQ(tlc.eraseLatency, fromUs(2274));

    FlashTiming opt = FlashTiming::optane();
    EXPECT_EQ(opt.pageBytes, 4096u);
    EXPECT_EQ(opt.eraseLatency, 0u);
    // Byte-granular serialization: PRAM sectors program slower than
    // their word latency suggests, but read far faster than NAND.
    EXPECT_LT(opt.readLatency, slc.readLatency);
    EXPECT_LT(opt.programLatency, slc.programLatency);

    FlashTiming pp = FlashTiming::pagePram();
    EXPECT_EQ(pp.pageBytes, 16384u);
    EXPECT_LT(pp.readLatency, slc.readLatency);
    EXPECT_TRUE(slc.valid());
    EXPECT_TRUE(opt.valid());
    EXPECT_TRUE(pp.valid());
}

TEST(FlashArrayTest, ReadLatencyIsSensePlusTransfer)
{
    EventQueue eq;
    FlashArrayConfig cfg;
    FlashArray arr(eq, cfg, "arr");
    Tick done = arr.readPage({0, 0, 0});
    EXPECT_EQ(done,
              cfg.media.readLatency + arr.pageTransferTicks());
    EXPECT_EQ(arr.arrayStats().pageReads, 1u);
}

TEST(FlashArrayTest, SameDieReadsSerialize)
{
    EventQueue eq;
    FlashArrayConfig cfg;
    FlashArray arr(eq, cfg, "arr");
    Tick a = arr.readPage({0, 0, 0});
    Tick b = arr.readPage({0, 0, 1});
    // The second sense waits for the first; transfers also serialize.
    EXPECT_GE(b, a + cfg.media.readLatency);
}

TEST(FlashArrayTest, DifferentDiesOverlapSenses)
{
    EventQueue eq;
    FlashArrayConfig cfg;
    FlashArray arr(eq, cfg, "arr");
    Tick a = arr.readPage({0, 0, 0});
    Tick b = arr.readPage({1, 0, 0}); // same channel, other die
    // Senses overlap; only the channel transfer serializes.
    EXPECT_LT(b, a + cfg.media.readLatency);
    EXPECT_GE(b, a + arr.pageTransferTicks());
}

TEST(FlashArrayTest, DifferentChannelsFullyParallel)
{
    EventQueue eq;
    FlashArrayConfig cfg;
    FlashArray arr(eq, cfg, "arr");
    Tick a = arr.readPage({0, 0, 0});
    std::uint32_t other = cfg.diesPerChannel; // first die of channel 1
    Tick b = arr.readPage({other, 0, 0});
    EXPECT_EQ(a, b);
}

TEST(FlashArrayTest, ProgramTransfersThenPrograms)
{
    EventQueue eq;
    FlashArrayConfig cfg;
    FlashArray arr(eq, cfg, "arr");
    Tick done = arr.programPage({0, 0, 0});
    EXPECT_EQ(done,
              arr.pageTransferTicks() + cfg.media.programLatency);
    EXPECT_EQ(arr.arrayStats().pagePrograms, 1u);
}

TEST(FlashArrayTest, EraseOccupiesDie)
{
    EventQueue eq;
    FlashArrayConfig cfg;
    FlashArray arr(eq, cfg, "arr");
    Tick done = arr.eraseBlock(0, 0);
    EXPECT_EQ(done, cfg.media.eraseLatency);
    Tick read_done = arr.readPage({0, 1, 0});
    EXPECT_GE(read_done, done + cfg.media.readLatency);
}

TEST(FlashArrayTest, EarliestParameterDefersStart)
{
    EventQueue eq;
    FlashArrayConfig cfg;
    FlashArray arr(eq, cfg, "arr");
    Tick done = arr.readPage({0, 0, 0}, fromUs(100));
    EXPECT_EQ(done, fromUs(100) + cfg.media.readLatency +
                        arr.pageTransferTicks());
}

TEST(FlashArrayTest, CapacityArithmetic)
{
    FlashArrayConfig cfg;
    cfg.channels = 2;
    cfg.diesPerChannel = 2;
    cfg.blocksPerDie = 10;
    cfg.pagesPerBlock = 4;
    EXPECT_EQ(cfg.numDies(), 4u);
    EXPECT_EQ(cfg.capacityBytes(),
              4ull * 10 * 4 * cfg.media.pageBytes);
}

TEST(FlashArrayDeathTest, OutOfRangePanics)
{
    EventQueue eq;
    FlashArrayConfig cfg;
    FlashArray arr(eq, cfg, "arr");
    EXPECT_DEATH(arr.readPage({cfg.numDies(), 0, 0}), "out of range");
    EXPECT_DEATH(arr.eraseBlock(0, cfg.blocksPerDie),
                 "block out of range");
}

} // namespace
} // namespace flash
} // namespace dramless
