/**
 * @file
 * Unit tests of the page-mapped FTL: mapping, log-structured writes,
 * garbage collection and write amplification.
 */

#include <gtest/gtest.h>

#include "flash/ftl.hh"
#include "sim/random.hh"

namespace dramless
{
namespace flash
{
namespace
{

FlashArrayConfig
tinyArray()
{
    FlashArrayConfig cfg;
    cfg.channels = 1;
    cfg.diesPerChannel = 2;
    cfg.blocksPerDie = 8;
    cfg.pagesPerBlock = 8;
    return cfg;
}

class FtlTest : public ::testing::Test
{
  protected:
    FtlTest()
        : arr(eq, tinyArray(), "arr"),
          ftl(arr, FtlConfig{0.25, 2}, "ftl")
    {}

    EventQueue eq;
    FlashArray arr;
    Ftl ftl;
};

TEST_F(FtlTest, LogicalCapacityReflectsOverProvision)
{
    // 2 dies x 8 blocks x 8 pages = 128 physical pages; 25% OP.
    EXPECT_EQ(ftl.logicalPages(), 96u);
    EXPECT_EQ(ftl.logicalBytes(), 96u * 16384u);
}

TEST_F(FtlTest, PopulateMapsWithoutTiming)
{
    EXPECT_FALSE(ftl.isMapped(5));
    ftl.populate(5);
    EXPECT_TRUE(ftl.isMapped(5));
    EXPECT_EQ(arr.arrayStats().pagePrograms, 0u);
}

TEST_F(FtlTest, ReadAutoPopulatesColdData)
{
    Tick done = ftl.readPage(7, 0);
    EXPECT_TRUE(ftl.isMapped(7));
    EXPECT_GT(done, 0u);
    EXPECT_EQ(ftl.ftlStats().hostPagesRead, 1u);
}

TEST_F(FtlTest, WriteRemapsAndInvalidatesOldCopy)
{
    ftl.populate(3);
    Tick t1 = ftl.writePage(3, 0);
    EXPECT_GT(t1, 0u);
    EXPECT_TRUE(ftl.isMapped(3));
    EXPECT_EQ(ftl.ftlStats().hostPagesWritten, 1u);
    // Overwriting again keeps exactly one valid copy.
    ftl.writePage(3, t1);
    EXPECT_EQ(ftl.ftlStats().hostPagesWritten, 2u);
}

TEST_F(FtlTest, SustainedOverwriteTriggersGc)
{
    // Hammer a small logical set until the log wraps and GC must run.
    Tick t = 0;
    for (int round = 0; round < 30; ++round) {
        for (std::uint64_t lpn = 0; lpn < 8; ++lpn)
            t = ftl.writePage(lpn, t);
    }
    EXPECT_GT(ftl.ftlStats().gcRuns, 0u);
    EXPECT_GT(ftl.ftlStats().blocksErased, 0u);
    EXPECT_GE(ftl.ftlStats().writeAmplification(), 1.0);
    // All logical pages must still be mapped after collection.
    for (std::uint64_t lpn = 0; lpn < 8; ++lpn)
        EXPECT_TRUE(ftl.isMapped(lpn));
}

TEST_F(FtlTest, HotColdWorkloadHasModerateWriteAmplification)
{
    // Fill half the logical space once, then rewrite a hot subset.
    Tick t = 0;
    for (std::uint64_t lpn = 0; lpn < ftl.logicalPages() / 2; ++lpn)
        ftl.populate(lpn);
    Random rng(5);
    for (int i = 0; i < 400; ++i)
        t = ftl.writePage(rng.below(16), t);
    double wa = ftl.ftlStats().writeAmplification();
    EXPECT_GE(wa, 1.0);
    EXPECT_LT(wa, 6.0);
}

TEST_F(FtlTest, GcPreservesAllMappingsProperty)
{
    // Random writes; mappings must stay injective and complete.
    Random rng(77);
    Tick t = 0;
    for (int i = 0; i < 600; ++i) {
        std::uint64_t lpn = rng.below(32);
        t = ftl.writePage(lpn, t);
    }
    int mapped = 0;
    for (std::uint64_t lpn = 0; lpn < 32; ++lpn)
        mapped += ftl.isMapped(lpn) ? 1 : 0;
    EXPECT_EQ(mapped, 32);
}

TEST_F(FtlTest, WriteTimingIncludesProgramLatency)
{
    Tick done = ftl.writePage(0, 0);
    EXPECT_GE(done, tinyArray().media.programLatency);
}

TEST(FtlDeathTest, RejectsBadConfigAndRange)
{
    EventQueue eq;
    FlashArray arr(eq, tinyArray(), "arr");
    EXPECT_DEATH(Ftl(arr, FtlConfig{0.0, 2}, "bad"),
                 "out of range");
    Ftl ftl(arr, FtlConfig{0.25, 2}, "ftl");
    EXPECT_DEATH(ftl.readPage(ftl.logicalPages(), 0),
                 "lpn out of range");
}

} // namespace
} // namespace flash
} // namespace dramless
