/**
 * @file
 * Unit and behavioural tests of the FPGA channel controller: request
 * latency, phase skipping, scheduler policies, selective erasing,
 * hazards and functional data integrity.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "ctrl/channel_controller.hh"
#include "sim/random.hh"

namespace dramless
{
namespace ctrl
{
namespace
{

/** Harness with completion capture. */
class ChannelTest : public ::testing::Test
{
  protected:
    std::unique_ptr<ChannelController>
    make(const SchedulerConfig &cfg, std::uint32_t modules = 4)
    {
        auto ctl = std::make_unique<ChannelController>(
            eq, modules, pram::PramGeometry::paperDefault(),
            pram::PramTiming::paperDefault(), cfg, "ch0");
        ctl->setCallback([this](const MemResponse &resp) {
            done[resp.id] = resp.completedAt;
        });
        return ctl;
    }

    /** Drain all events (including background zero-fills). */
    void
    runAll()
    {
        eq.run();
    }

    EventQueue eq;
    std::map<std::uint64_t, Tick> done;
};

TEST_F(ChannelTest, SingleReadLatencyMatchesThreePhaseSum)
{
    auto ctl = make(SchedulerConfig::finalConfig());
    MemRequest req;
    req.kind = ReqKind::read;
    req.addr = 0;
    req.size = 32;
    std::uint64_t id = ctl->enqueue(req);
    runAll();
    ASSERT_TRUE(done.count(id));
    // pre-active (7.5) + tRCD (80) + RL+tDQSCK (19) + BL16 (40), with
    // command-cycle offsets of one tCK between phases.
    Tick lat = done[id];
    EXPECT_GE(lat, fromNs(140));
    EXPECT_LE(lat, fromNs(160));
    EXPECT_EQ(ctl->ctrlStats().readRequests, 1u);
    EXPECT_EQ(ctl->ctrlStats().readWords, 1u);
}

TEST_F(ChannelTest, WriteIsOverwriteLatencyOnUntouchedWord)
{
    auto ctl = make(SchedulerConfig::finalConfig());
    MemRequest req;
    req.kind = ReqKind::write;
    req.addr = 64;
    req.size = 32;
    std::uint64_t id = ctl->enqueue(req);
    runAll();
    ASSERT_TRUE(done.count(id));
    // Durable completion includes the 18 us RESET+SET overwrite.
    EXPECT_GE(done[id], fromUs(18));
    EXPECT_LE(done[id], fromUs(19));
}

TEST_F(ChannelTest, RepeatedReadHitsRowBuffersAndSkipsPhases)
{
    auto ctl = make(SchedulerConfig::finalConfig());
    MemRequest req;
    req.kind = ReqKind::read;
    req.addr = 128;
    req.size = 32;
    std::uint64_t id1 = ctl->enqueue(req);
    runAll();
    Tick first = done[id1];
    std::uint64_t id2 = ctl->enqueue(req);
    runAll();
    Tick second_lat = done[id2] - first;
    // The second read finds both the RAB and the RDB holding the row:
    // no pre-active, no activate, just the read phase.
    EXPECT_GE(ctl->ctrlStats().preActivesSkipped, 1u);
    EXPECT_GE(ctl->ctrlStats().activatesSkipped, 1u);
    EXPECT_LT(second_lat, fromNs(70));
}

TEST_F(ChannelTest, SteadyStateAllocatesNoFunctionEvents)
{
    // The per-request path through the controller and the PRAM
    // modules must run entirely on persistent MemberEvents: no
    // EventFunctionWrapper (and thus no std::function allocation) may
    // be constructed while traffic flows.
    auto ctl = make(SchedulerConfig::finalConfig());
    Random rng(7);
    const std::uint64_t before = EventFunctionWrapper::constructed();
    for (int i = 0; i < 200; ++i) {
        MemRequest req;
        req.kind = rng.uniform() < 0.5 ? ReqKind::read
                                       : ReqKind::write;
        req.addr = rng.below(1u << 20) * 32;
        req.size = 32;
        ctl->enqueue(req);
        if (i % 16 == 15)
            runAll();
    }
    runAll();
    EXPECT_EQ(EventFunctionWrapper::constructed(), before)
        << "steady-state request path constructed function events";
    EXPECT_EQ(done.size(), 200u);
}

TEST_F(ChannelTest, FunctionalWriteThenTimedReadBack)
{
    auto ctl = make(SchedulerConfig::finalConfig());
    std::vector<std::uint8_t> data(64);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = std::uint8_t(i * 7 + 1);
    ctl->functionalWrite(256, data.data(), data.size());

    std::vector<std::uint8_t> out(64, 0);
    MemRequest req;
    req.kind = ReqKind::read;
    req.addr = 256;
    req.size = 64;
    req.readInto = out.data();
    ctl->enqueue(req);
    runAll();
    EXPECT_EQ(out, data);
}

TEST_F(ChannelTest, TimedWriteThenTimedReadBack)
{
    auto ctl = make(SchedulerConfig::finalConfig());
    std::vector<std::uint8_t> data(128);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = std::uint8_t(200 - i);
    MemRequest wr;
    wr.kind = ReqKind::write;
    wr.addr = 1024;
    wr.size = 128;
    wr.writeFrom = data.data();
    ctl->enqueue(wr);

    std::vector<std::uint8_t> out(128, 0);
    MemRequest rd;
    rd.kind = ReqKind::read;
    rd.addr = 1024;
    rd.size = 128;
    rd.readInto = out.data();
    ctl->enqueue(rd); // must observe the older write (RAW hazard)
    runAll();
    EXPECT_EQ(out, data);
}

TEST_F(ChannelTest, WordsSpreadAcrossModules)
{
    auto ctl = make(SchedulerConfig::finalConfig(), 4);
    MemRequest req;
    req.kind = ReqKind::read;
    req.addr = 0;
    req.size = 4 * 32;
    ctl->enqueue(req);
    runAll();
    for (std::uint32_t m = 0; m < 4; ++m)
        EXPECT_EQ(ctl->module(m).moduleStats().numReadBursts, 1u)
            << "module " << m;
}

TEST_F(ChannelTest, InterleavingOutperformsBareMetalOnPartitionedReads)
{
    // Many reads to the same module, different partitions: the
    // multi-resource aware interleaving overlaps tRCD with bursts.
    auto run_with = [&](const SchedulerConfig &cfg) {
        EventQueue local_eq;
        auto ctl = std::make_unique<ChannelController>(
            local_eq, 1, pram::PramGeometry::paperDefault(),
            pram::PramTiming::paperDefault(), cfg, "ch");
        Tick last = 0;
        ctl->setCallback([&](const MemResponse &resp) {
            last = std::max(last, resp.completedAt);
        });
        for (int i = 0; i < 32; ++i) {
            MemRequest req;
            req.kind = ReqKind::read;
            req.addr = std::uint64_t(i) * 32; // partition i % 16
            req.size = 32;
            ctl->enqueue(req);
        }
        local_eq.run();
        return last;
    };
    Tick bare = run_with(SchedulerConfig::bareMetal());
    Tick inter = run_with(SchedulerConfig::interleavingOnly());
    EXPECT_LT(inter, bare);
    // Section V-A: interleaving hides ~40% of the access latency.
    double gain = double(bare - inter) / double(bare);
    EXPECT_GT(gain, 0.25);
}

TEST_F(ChannelTest, SelectiveErasingTurnsOverwritesIntoSetOnly)
{
    auto ctl = make(SchedulerConfig::finalConfig(), 1);
    // Hint the future write region, then let the controller pre-RESET
    // it while idle.
    ctl->hintFutureWrite(0, 4 * 32);
    runAll();
    EXPECT_EQ(ctl->ctrlStats().zeroFillPrograms, 4u);
    for (std::uint64_t w = 0; w < 4; ++w)
        EXPECT_TRUE(ctl->module(0).wordIsPristine(w));
    // The final zero-fill's cell program may still be in flight (it
    // is busy-state, not an event); let it drain.
    eq.runUntil(ctl->module(0).programBusyUntil());

    // Demand writes now take the 10 us SET-only path.
    Tick start = eq.curTick();
    MemRequest req;
    req.kind = ReqKind::write;
    req.addr = 0;
    req.size = 32;
    std::uint64_t id = ctl->enqueue(req);
    runAll();
    Tick lat = done[id] - start;
    EXPECT_GE(lat, fromUs(10));
    EXPECT_LT(lat, fromUs(12));
    EXPECT_EQ(ctl->module(0).moduleStats().numPristinePrograms, 1u);
}

TEST_F(ChannelTest, ZeroFillCancelledByDemandWrite)
{
    auto ctl = make(SchedulerConfig::finalConfig(), 1);
    ctl->hintFutureWrite(0, 32);
    // The demand write arrives before the controller had any idle
    // time: the hint must be discarded, not applied after the write.
    std::vector<std::uint8_t> data(32, 0xEE);
    MemRequest req;
    req.kind = ReqKind::write;
    req.addr = 0;
    req.size = 32;
    req.writeFrom = data.data();
    ctl->enqueue(req);
    runAll();
    EXPECT_EQ(ctl->ctrlStats().zeroFillPrograms, 0u);
    std::vector<std::uint8_t> out(32, 0);
    ctl->functionalRead(0, out.data(), out.size());
    EXPECT_EQ(out, data);
}

TEST_F(ChannelTest, ZeroFillNeverRunsOnReadData)
{
    auto ctl = make(SchedulerConfig::finalConfig(), 1);
    std::vector<std::uint8_t> data(32, 0x42);
    ctl->functionalWrite(0, data.data(), data.size());
    // A demand read marks the word live before the hint lands.
    MemRequest rd;
    rd.kind = ReqKind::read;
    rd.addr = 0;
    rd.size = 32;
    ctl->enqueue(rd);
    ctl->hintFutureWrite(0, 32);
    runAll();
    std::vector<std::uint8_t> out(32, 0);
    ctl->functionalRead(0, out.data(), out.size());
    EXPECT_EQ(out, data); // still intact
}

TEST_F(ChannelTest, BareMetalServesFifoPerModule)
{
    auto ctl = make(SchedulerConfig::bareMetal(), 1);
    std::vector<std::uint64_t> order;
    ctl->setCallback([&](const MemResponse &resp) {
        order.push_back(resp.id);
    });
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 8; ++i) {
        MemRequest req;
        req.kind = ReqKind::read;
        req.addr = std::uint64_t(i) * 32;
        req.size = 32;
        ids.push_back(ctl->enqueue(req));
    }
    runAll();
    EXPECT_EQ(order, ids);
}

TEST_F(ChannelTest, CanAcceptHonoursQueueLimit)
{
    SchedulerConfig cfg = SchedulerConfig::finalConfig();
    cfg.maxQueuePerModule = 2;
    auto ctl = make(cfg, 1);
    MemRequest req;
    req.kind = ReqKind::write;
    req.addr = 0;
    req.size = 32;
    EXPECT_TRUE(ctl->canAccept(req));
    ctl->enqueue(req);
    req.addr = 32;
    ctl->enqueue(req);
    req.addr = 64;
    EXPECT_FALSE(ctl->canAccept(req));
    runAll();
    EXPECT_TRUE(ctl->canAccept(req));
}

TEST_F(ChannelTest, CapacityExcludesOverlayWindow)
{
    auto ctl = make(SchedulerConfig::finalConfig(), 2);
    std::uint64_t module_bytes =
        pram::PramGeometry::paperDefault().moduleBytes();
    EXPECT_LT(ctl->capacity(), 2 * module_bytes);
    EXPECT_GT(ctl->capacity(), 2 * (module_bytes - 4096));
}

TEST_F(ChannelTest, MixedRandomTrafficFunctionalIntegrity)
{
    auto ctl = make(SchedulerConfig::finalConfig(), 4);
    Random rng(2024);
    constexpr std::uint64_t span_words = 64;
    std::vector<std::uint8_t> shadow(span_words * 32, 0);
    ctl->functionalWrite(0, shadow.data(), shadow.size());

    std::vector<std::vector<std::uint8_t>> bufs;
    bufs.reserve(200);
    for (int i = 0; i < 200; ++i) {
        std::uint64_t word = rng.below(span_words);
        std::uint32_t words =
            std::uint32_t(rng.between(1, 4));
        if (word + words > span_words)
            words = std::uint32_t(span_words - word);
        bool is_write = rng.chance(0.5);
        MemRequest req;
        req.addr = word * 32;
        req.size = words * 32;
        if (is_write) {
            bufs.emplace_back(req.size);
            for (auto &b : bufs.back())
                b = std::uint8_t(rng.next());
            std::memcpy(shadow.data() + req.addr,
                        bufs.back().data(), req.size);
            req.kind = ReqKind::write;
            req.writeFrom = bufs.back().data();
        } else {
            req.kind = ReqKind::read;
        }
        ctl->enqueue(req);
        if (i % 10 == 9)
            runAll(); // drain periodically to vary queue depths
    }
    runAll();
    std::vector<std::uint8_t> out(shadow.size(), 0);
    ctl->functionalRead(0, out.data(), out.size());
    EXPECT_EQ(out, shadow);
}

TEST_F(ChannelTest, RdbPrefetchWarmsSequentialReads)
{
    SchedulerConfig cfg = SchedulerConfig::finalConfig();
    cfg.rdbPrefetch = true;
    auto ctl = make(cfg, 1);

    // A first sequential read seeds the predictor; after the module
    // idles, the next row is speculatively sensed.
    MemRequest req;
    req.kind = ReqKind::read;
    req.addr = 0;
    req.size = 32;
    ctl->enqueue(req);
    runAll();
    EXPECT_GE(ctl->ctrlStats().prefetchActivates, 1u);

    // The prefetched row serves the next demand read with both
    // addressing phases skipped: latency is just the read phase.
    Tick t0 = eq.curTick();
    req.addr = 32 * 16; // module word 1 (16 modules... 1 module here)
    req.addr = 32;      // single-module channel: next module word
    std::uint64_t id = ctl->enqueue(req);
    runAll();
    (void)id;
    Tick lat = eq.curTick() - t0;
    // Either a fully-warm RDB hit (~60 ns) or a short wait for the
    // in-flight sense plus the read phase — far below the ~150 ns
    // full three-phase access.
    EXPECT_LT(lat, fromNs(110));
    EXPECT_GE(ctl->ctrlStats().activatesSkipped, 1u);
}

TEST_F(ChannelTest, PrefetchNeverCorruptsFunctionalData)
{
    SchedulerConfig cfg = SchedulerConfig::finalConfig();
    cfg.rdbPrefetch = true;
    auto ctl = make(cfg, 2);
    Random rng(55);
    std::vector<std::uint8_t> shadow(64 * 32);
    for (auto &b : shadow)
        b = std::uint8_t(rng.next());
    ctl->functionalWrite(0, shadow.data(), shadow.size());
    std::vector<std::uint8_t> out(shadow.size(), 0);
    // Sequential reads with functional capture, prefetch racing ahead.
    for (std::uint64_t w = 0; w < 64; w += 2) {
        MemRequest req;
        req.kind = ReqKind::read;
        req.addr = w * 32;
        req.size = 64;
        req.readInto = out.data() + w * 32;
        ctl->enqueue(req);
        if (w % 8 == 6)
            runAll();
    }
    runAll();
    EXPECT_EQ(out, shadow);
}

TEST_F(ChannelTest, DeathOnMalformedRequests)
{
    auto ctl = make(SchedulerConfig::finalConfig());
    MemRequest req;
    req.kind = ReqKind::read;
    req.addr = 0;
    req.size = 31;
    EXPECT_DEATH(ctl->enqueue(req), "multiple");
    req.size = 32;
    req.addr = 16;
    EXPECT_DEATH(ctl->enqueue(req), "misaligned");
    req.addr = ctl->capacity();
    EXPECT_DEATH(ctl->enqueue(req), "beyond capacity");
}

} // namespace
} // namespace ctrl
} // namespace dramless
