/**
 * @file
 * Parameterized property tests over subsystem shapes: channel and
 * module counts must not affect functional correctness, striping
 * coverage, or completion accounting.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "ctrl/pram_subsystem.hh"
#include "sim/random.hh"

namespace dramless
{
namespace ctrl
{
namespace
{

/** (channels, modulesPerChannel, stripeBytes). */
using ShapeParam = std::tuple<std::uint32_t, std::uint32_t,
                              std::uint32_t>;

class SubsystemShapeTest
    : public ::testing::TestWithParam<ShapeParam>
{
  protected:
    SubsystemConfig
    config() const
    {
        SubsystemConfig cfg;
        cfg.channels = std::get<0>(GetParam());
        cfg.modulesPerChannel = std::get<1>(GetParam());
        cfg.stripeBytes = std::get<2>(GetParam());
        return cfg;
    }
};

TEST_P(SubsystemShapeTest, FunctionalIntegrityUnderMixedTraffic)
{
    EventQueue eq;
    PramSubsystem sys(eq, config(), "pram");
    std::uint64_t completed = 0;
    sys.setCallback([&](const MemResponse &) { ++completed; });
    sys.initialize();

    Random rng(std::get<0>(GetParam()) * 97 +
               std::get<1>(GetParam()));
    constexpr std::uint64_t words = 128;
    std::vector<std::uint8_t> shadow(words * 32, 0);
    sys.functionalWrite(0, shadow.data(), shadow.size());

    std::vector<std::vector<std::uint8_t>> bufs;
    std::uint64_t issued = 0;
    for (int i = 0; i < 120; ++i) {
        std::uint64_t w = rng.below(words - 4);
        std::uint32_t n = std::uint32_t(rng.between(1, 4));
        MemRequest req;
        req.addr = w * 32;
        req.size = n * 32;
        if (rng.chance(0.4)) {
            bufs.emplace_back(req.size);
            for (auto &b : bufs.back())
                b = std::uint8_t(rng.next());
            std::memcpy(shadow.data() + req.addr,
                        bufs.back().data(), req.size);
            req.kind = ReqKind::write;
            req.writeFrom = bufs.back().data();
        } else {
            req.kind = ReqKind::read;
        }
        sys.enqueue(req);
        ++issued;
        if (i % 20 == 19)
            eq.run();
    }
    eq.run();
    EXPECT_EQ(completed, issued);
    EXPECT_TRUE(sys.idle());

    std::vector<std::uint8_t> out(shadow.size());
    sys.functionalRead(0, out.data(), out.size());
    EXPECT_EQ(out, shadow);
}

TEST_P(SubsystemShapeTest, StripingCoversEveryChannel)
{
    EventQueue eq;
    SubsystemConfig cfg = config();
    PramSubsystem sys(eq, cfg, "pram");
    sys.initialize();
    // One request spanning channels x stripes must hit every channel.
    MemRequest req;
    req.kind = ReqKind::read;
    req.addr = 0;
    req.size = cfg.channels * cfg.stripeBytes;
    sys.enqueue(req);
    eq.run();
    for (std::uint32_t c = 0; c < cfg.channels; ++c) {
        EXPECT_GT(sys.channel(c).ctrlStats().readWords, 0u)
            << "channel " << c;
    }
}

TEST_P(SubsystemShapeTest, CapacityScalesWithShape)
{
    EventQueue eq;
    SubsystemConfig cfg = config();
    PramSubsystem sys(eq, cfg, "pram");
    EXPECT_EQ(sys.capacity(),
              sys.channel(0).capacity() * cfg.channels);
    EXPECT_EQ(sys.numChannels(), cfg.channels);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SubsystemShapeTest,
    ::testing::Values(ShapeParam{2, 16, 512}, // the paper's shape
                      ShapeParam{1, 4, 512},
                      ShapeParam{2, 2, 128},
                      ShapeParam{4, 8, 256},
                      ShapeParam{3, 5, 160}),
    [](const ::testing::TestParamInfo<ShapeParam> &info) {
        return "ch" + std::to_string(std::get<0>(info.param)) +
               "_m" + std::to_string(std::get<1>(info.param)) +
               "_s" + std::to_string(std::get<2>(info.param));
    });

} // namespace
} // namespace ctrl
} // namespace dramless
