/**
 * @file
 * Unit tests of the multi-channel PRAM subsystem facade: striping,
 * completion aggregation, wear leveling and functional integrity.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "ctrl/pram_subsystem.hh"
#include "sim/random.hh"

namespace dramless
{
namespace ctrl
{
namespace
{

/** Small subsystem configuration for fast tests. */
SubsystemConfig
smallConfig()
{
    SubsystemConfig cfg;
    cfg.channels = 2;
    cfg.modulesPerChannel = 2;
    cfg.stripeBytes = 128;
    return cfg;
}

class SubsystemTest : public ::testing::Test
{
  protected:
    std::unique_ptr<PramSubsystem>
    make(const SubsystemConfig &cfg)
    {
        auto sys = std::make_unique<PramSubsystem>(eq, cfg, "pram");
        sys->setCallback([this](const MemResponse &resp) {
            done[resp.id] = resp.completedAt;
        });
        return sys;
    }

    EventQueue eq;
    std::map<std::uint64_t, Tick> done;
};

TEST_F(SubsystemTest, InitializeReportsBootLatency)
{
    SubsystemConfig cfg = smallConfig();
    cfg.bootLatency = fromUs(150);
    auto sys = make(cfg);
    EXPECT_EQ(sys->initialize(), fromUs(150));
}

TEST_F(SubsystemTest, CapacityIsChannelsTimesUsable)
{
    auto sys = make(smallConfig());
    EXPECT_EQ(sys->capacity(), sys->channel(0).capacity() * 2);
}

TEST_F(SubsystemTest, StripesAlternateChannels)
{
    auto sys = make(smallConfig());
    sys->initialize();
    // Two consecutive 128 B stripes land on different channels.
    MemRequest req;
    req.kind = ReqKind::read;
    req.addr = 0;
    req.size = 128;
    sys->enqueue(req);
    req.addr = 128;
    sys->enqueue(req);
    eq.run();
    EXPECT_EQ(sys->channel(0).ctrlStats().readWords, 4u);
    EXPECT_EQ(sys->channel(1).ctrlStats().readWords, 4u);
}

TEST_F(SubsystemTest, RequestSpanningChannelsCompletesOnce)
{
    auto sys = make(smallConfig());
    sys->initialize();
    MemRequest req;
    req.kind = ReqKind::read;
    req.addr = 64;       // crosses the 128 B stripe boundary
    req.size = 128;
    std::uint64_t id = sys->enqueue(req);
    eq.run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_TRUE(done.count(id));
    EXPECT_TRUE(sys->idle());
}

TEST_F(SubsystemTest, FunctionalRoundTripAcrossStripes)
{
    auto sys = make(smallConfig());
    std::vector<std::uint8_t> data(1024);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = std::uint8_t(i ^ (i >> 3));
    sys->functionalWrite(100 * 32, data.data(), data.size());
    std::vector<std::uint8_t> out(data.size(), 0);
    sys->functionalRead(100 * 32, out.data(), out.size());
    EXPECT_EQ(out, data);
}

TEST_F(SubsystemTest, TimedWriteReadBackAcrossChannels)
{
    auto sys = make(smallConfig());
    sys->initialize();
    std::vector<std::uint8_t> data(512);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = std::uint8_t(3 * i + 1);
    MemRequest wr;
    wr.kind = ReqKind::write;
    wr.addr = 0;
    wr.size = std::uint32_t(data.size());
    wr.writeFrom = data.data();
    sys->enqueue(wr);
    eq.run();
    std::vector<std::uint8_t> out(data.size(), 0);
    MemRequest rd;
    rd.kind = ReqKind::read;
    rd.addr = 0;
    rd.size = std::uint32_t(out.size());
    rd.readInto = out.data();
    sys->enqueue(rd);
    eq.run();
    EXPECT_EQ(out, data);
}

TEST_F(SubsystemTest, HintsReachTheRightChannels)
{
    auto sys = make(smallConfig());
    sys->initialize();
    sys->hintFutureWrite(0, 256); // one stripe per channel
    eq.run();                     // zero-fills execute while idle
    EXPECT_EQ(sys->channel(0).ctrlStats().zeroFillPrograms, 4u);
    EXPECT_EQ(sys->channel(1).ctrlStats().zeroFillPrograms, 4u);
}

TEST_F(SubsystemTest, StatsAggregateBytes)
{
    auto sys = make(smallConfig());
    sys->initialize();
    MemRequest req;
    req.kind = ReqKind::write;
    req.addr = 0;
    req.size = 256;
    sys->enqueue(req);
    req.kind = ReqKind::read;
    sys->enqueue(req);
    eq.run();
    EXPECT_EQ(sys->subsystemStats().bytesWritten, 256u);
    EXPECT_EQ(sys->subsystemStats().bytesRead, 256u);
    EXPECT_EQ(sys->subsystemStats().readRequests, 1u);
    EXPECT_EQ(sys->subsystemStats().writeRequests, 1u);
}

TEST_F(SubsystemTest, WearLevelingPreservesDataAcrossGapMoves)
{
    SubsystemConfig cfg = smallConfig();
    cfg.wearLeveling = true;
    cfg.gapMovePeriod = 3;
    auto sys = make(cfg);
    sys->initialize();

    Random rng(11);
    constexpr std::uint64_t stripes = 32;
    std::vector<std::uint8_t> shadow(stripes * 128, 0);
    std::vector<std::vector<std::uint8_t>> bufs;
    for (int i = 0; i < 120; ++i) {
        std::uint64_t s = rng.below(stripes);
        bufs.emplace_back(128);
        for (auto &b : bufs.back())
            b = std::uint8_t(rng.next());
        std::memcpy(shadow.data() + s * 128, bufs.back().data(), 128);
        MemRequest wr;
        wr.kind = ReqKind::write;
        wr.addr = s * 128;
        wr.size = 128;
        wr.writeFrom = bufs.back().data();
        sys->enqueue(wr);
        eq.run();
    }
    ASSERT_NE(sys->wearLeveler(), nullptr);
    EXPECT_EQ(sys->wearLeveler()->gapMoves(), 40u);
    EXPECT_EQ(sys->subsystemStats().wearLevelMoves, 40u);

    std::vector<std::uint8_t> out(shadow.size(), 0);
    sys->functionalRead(0, out.data(), out.size());
    EXPECT_EQ(out, shadow);
}

TEST_F(SubsystemTest, WearLevelingShrinksCapacityByOneStripe)
{
    SubsystemConfig plain = smallConfig();
    auto a = make(plain);
    SubsystemConfig wl = smallConfig();
    wl.wearLeveling = true;
    EventQueue eq2;
    PramSubsystem b(eq2, wl, "wl");
    EXPECT_EQ(b.capacity(), a->capacity() - wl.stripeBytes);
}

TEST_F(SubsystemTest, DeathOnOversizedRequest)
{
    auto sys = make(smallConfig());
    MemRequest req;
    req.kind = ReqKind::read;
    req.addr = sys->capacity() - 32;
    req.size = 64;
    EXPECT_DEATH(sys->enqueue(req), "beyond subsystem capacity");
}

} // namespace
} // namespace ctrl
} // namespace dramless
