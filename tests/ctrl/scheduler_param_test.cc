/**
 * @file
 * Parameterized property tests: every scheduler configuration must
 * preserve functional correctness and protocol invariants under
 * randomized traffic; only performance may differ.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "ctrl/channel_controller.hh"
#include "sim/random.hh"

namespace dramless
{
namespace ctrl
{
namespace
{

class SchedulerParamTest
    : public ::testing::TestWithParam<SchedulerConfig>
{
  protected:
    std::unique_ptr<ChannelController>
    make(std::uint32_t modules = 4)
    {
        auto ctl = std::make_unique<ChannelController>(
            eq, modules, pram::PramGeometry::paperDefault(),
            pram::PramTiming::paperDefault(), GetParam(), "ch");
        ctl->setCallback([this](const MemResponse &r) {
            completions.push_back(r);
        });
        return ctl;
    }

    EventQueue eq;
    std::vector<MemResponse> completions;
};

TEST_P(SchedulerParamTest, RandomTrafficFunctionalIntegrity)
{
    auto ctl = make();
    Random rng(31337);
    constexpr std::uint64_t words = 96;
    std::vector<std::uint8_t> shadow(words * 32, 0);
    ctl->functionalWrite(0, shadow.data(), shadow.size());

    std::vector<std::vector<std::uint8_t>> bufs;
    for (int i = 0; i < 150; ++i) {
        std::uint64_t w = rng.below(words);
        std::uint32_t n = std::uint32_t(rng.between(1, 3));
        if (w + n > words)
            n = std::uint32_t(words - w);
        MemRequest req;
        req.addr = w * 32;
        req.size = n * 32;
        if (rng.chance(0.45)) {
            bufs.emplace_back(req.size);
            for (auto &b : bufs.back())
                b = std::uint8_t(rng.next());
            std::memcpy(shadow.data() + req.addr,
                        bufs.back().data(), req.size);
            req.kind = ReqKind::write;
            req.writeFrom = bufs.back().data();
        } else {
            req.kind = ReqKind::read;
        }
        ctl->enqueue(req);
        if (i % 16 == 15)
            eq.run();
    }
    eq.run();
    std::vector<std::uint8_t> out(shadow.size());
    ctl->functionalRead(0, out.data(), out.size());
    EXPECT_EQ(out, shadow)
        << "under scheduler " << GetParam().label();
}

TEST_P(SchedulerParamTest, EveryRequestCompletesExactlyOnce)
{
    auto ctl = make();
    Random rng(7);
    std::uint64_t issued = 0;
    for (int i = 0; i < 120; ++i) {
        MemRequest req;
        req.kind = rng.chance(0.3) ? ReqKind::write : ReqKind::read;
        req.addr = rng.below(64) * 32;
        req.size = 32 * std::uint32_t(rng.between(1, 4));
        ctl->enqueue(req);
        ++issued;
    }
    eq.run();
    EXPECT_EQ(completions.size(), issued);
    // Ids are unique.
    std::map<std::uint64_t, int> seen;
    for (const auto &r : completions)
        EXPECT_EQ(++seen[r.id], 1);
    EXPECT_TRUE(ctl->idle());
}

TEST_P(SchedulerParamTest, CompletionTicksAreMonotonicPerQueueDrain)
{
    auto ctl = make(2);
    for (int i = 0; i < 20; ++i) {
        MemRequest req;
        req.kind = ReqKind::read;
        req.addr = std::uint64_t(i) * 32;
        req.size = 32;
        ctl->enqueue(req);
    }
    eq.run();
    ASSERT_EQ(completions.size(), 20u);
    for (std::size_t i = 1; i < completions.size(); ++i)
        EXPECT_GE(completions[i].completedAt,
                  completions[i - 1].completedAt);
}

TEST_P(SchedulerParamTest, HintsNeverCorruptData)
{
    auto ctl = make(2);
    std::vector<std::uint8_t> data(64 * 32);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = std::uint8_t(i * 11 + 3);
    ctl->functionalWrite(0, data.data(), data.size());
    // Hint over live data, then touch it with reads and writes.
    ctl->hintFutureWrite(0, data.size());
    std::vector<std::uint8_t> newdata(32, 0xEE);
    for (int i = 0; i < 8; ++i) {
        MemRequest rd;
        rd.kind = ReqKind::read;
        rd.addr = std::uint64_t(i) * 64;
        rd.size = 32;
        ctl->enqueue(rd);
    }
    MemRequest wr;
    wr.kind = ReqKind::write;
    wr.addr = 32;
    wr.size = 32;
    wr.writeFrom = newdata.data();
    ctl->enqueue(wr);
    eq.run();
    std::memcpy(data.data() + 32, newdata.data(), 32);

    std::vector<std::uint8_t> out(data.size());
    ctl->functionalRead(0, out.data(), out.size());
    // Words the kernel read or wrote must be exact; hinted-but-
    // untouched words may legitimately have been pre-erased.
    EXPECT_EQ(std::memcmp(out.data() + 32, data.data() + 32, 32), 0);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(std::memcmp(out.data() + i * 64,
                              data.data() + i * 64, 32),
                  0)
            << "read word " << i << " corrupted under "
            << GetParam().label();
    }
}

TEST(SchedulerPresetTest, PresetsPinEveryFieldAndLabelsRoundTrip)
{
    // The presets use designated initializers so a new or reordered
    // field cannot silently mis-bind again; this pins the full field
    // set of each Figure 13 bar and the label() mapping.
    const SchedulerConfig bare = SchedulerConfig::bareMetal();
    EXPECT_FALSE(bare.interleaving);
    EXPECT_FALSE(bare.selectiveErasing);
    EXPECT_TRUE(bare.phaseSkipping);
    EXPECT_EQ(bare.maxQueuePerModule, 64u);
    EXPECT_FALSE(bare.rdbPrefetch);
    EXPECT_EQ(bare.label(), "Bare-metal");

    const SchedulerConfig inter = SchedulerConfig::interleavingOnly();
    EXPECT_TRUE(inter.interleaving);
    EXPECT_FALSE(inter.selectiveErasing);
    EXPECT_TRUE(inter.phaseSkipping);
    EXPECT_EQ(inter.maxQueuePerModule, 64u);
    EXPECT_FALSE(inter.rdbPrefetch);
    EXPECT_EQ(inter.label(), "Interleaving");

    const SchedulerConfig se = SchedulerConfig::selectiveErasingOnly();
    EXPECT_FALSE(se.interleaving);
    EXPECT_TRUE(se.selectiveErasing);
    EXPECT_TRUE(se.phaseSkipping);
    EXPECT_EQ(se.maxQueuePerModule, 64u);
    EXPECT_FALSE(se.rdbPrefetch);
    EXPECT_EQ(se.label(), "selective-erasing");

    const SchedulerConfig fin = SchedulerConfig::finalConfig();
    EXPECT_TRUE(fin.interleaving);
    EXPECT_TRUE(fin.selectiveErasing);
    EXPECT_TRUE(fin.phaseSkipping);
    EXPECT_EQ(fin.maxQueuePerModule, 64u);
    EXPECT_FALSE(fin.rdbPrefetch);
    EXPECT_EQ(fin.label(), "Final");

    // Defaults equal the shipped Final configuration.
    const SchedulerConfig dflt{};
    EXPECT_EQ(dflt.label(), "Final");
    EXPECT_EQ(dflt.interleaving, fin.interleaving);
    EXPECT_EQ(dflt.selectiveErasing, fin.selectiveErasing);
    EXPECT_EQ(dflt.phaseSkipping, fin.phaseSkipping);
    EXPECT_EQ(dflt.maxQueuePerModule, fin.maxQueuePerModule);
    EXPECT_EQ(dflt.rdbPrefetch, fin.rdbPrefetch);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerParamTest,
    ::testing::Values(SchedulerConfig::bareMetal(),
                      SchedulerConfig::interleavingOnly(),
                      SchedulerConfig::selectiveErasingOnly(),
                      SchedulerConfig::finalConfig()),
    [](const ::testing::TestParamInfo<SchedulerConfig> &info) {
        std::string label = info.param.label();
        for (auto &c : label) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return label;
    });

} // namespace
} // namespace ctrl
} // namespace dramless
