/**
 * @file
 * Unit and property tests of Start-Gap wear leveling.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "ctrl/start_gap.hh"
#include "sim/random.hh"

namespace dramless
{
namespace ctrl
{
namespace
{

TEST(StartGapTest, InitialMappingIsIdentity)
{
    StartGapMapper sg(8);
    for (std::uint64_t la = 0; la < 8; ++la)
        EXPECT_EQ(sg.map(la), la);
    EXPECT_EQ(sg.numPhysicalLines(), 9u);
}

TEST(StartGapTest, MappingStaysInjective)
{
    StartGapMapper sg(16, 1); // move on every write
    for (int round = 0; round < 200; ++round) {
        std::set<std::uint64_t> used;
        for (std::uint64_t la = 0; la < 16; ++la) {
            std::uint64_t pa = sg.map(la);
            EXPECT_LT(pa, sg.numPhysicalLines());
            EXPECT_TRUE(used.insert(pa).second)
                << "collision after " << round << " moves";
        }
        sg.recordWrite();
    }
}

TEST(StartGapTest, GapMovePeriodRespected)
{
    StartGapMapper sg(8, 5);
    int moves = 0;
    for (int i = 0; i < 50; ++i)
        moves += sg.recordWrite() ? 1 : 0;
    EXPECT_EQ(moves, 10);
    EXPECT_EQ(sg.gapMoves(), 10u);
    EXPECT_EQ(sg.writeCount(), 50u);
}

TEST(StartGapTest, DataSurvivesRotationProperty)
{
    // Shadow-model: physical lines hold values; on each gap move we
    // perform the copy the mapper requests, and logical reads must
    // always return what was logically written.
    constexpr std::uint64_t lines = 12;
    StartGapMapper sg(lines, 3);
    std::vector<int> physical(sg.numPhysicalLines(), -1);
    std::map<std::uint64_t, int> logical;

    Random rng(99);
    int next_value = 0;
    for (int step = 0; step < 2000; ++step) {
        std::uint64_t la = rng.below(lines);
        int v = next_value++;
        physical[sg.map(la)] = v;
        logical[la] = v;
        if (sg.recordWrite())
            physical[sg.movedTo()] = physical[sg.movedFrom()];
        // Verify every logical line still reads its last write.
        for (const auto &[l, val] : logical)
            ASSERT_EQ(physical[sg.map(l)], val)
                << "corruption at step " << step << " line " << l;
    }
    EXPECT_GT(sg.gapMoves(), 500u);
}

TEST(StartGapTest, FullRotationReturnsToIdentity)
{
    // After N+1 gap moves the gap is back at the top and Start has
    // advanced once; after N*(N+1) moves the mapping cycles fully.
    constexpr std::uint64_t n = 6;
    StartGapMapper sg(n, 1);
    std::vector<std::uint64_t> initial;
    for (std::uint64_t la = 0; la < n; ++la)
        initial.push_back(sg.map(la));
    for (std::uint64_t i = 0; i < n * (n + 1); ++i)
        sg.recordWrite();
    for (std::uint64_t la = 0; la < n; ++la)
        EXPECT_EQ(sg.map(la), initial[la]);
}

TEST(StartGapTest, WearSpreadsAcrossPhysicalLines)
{
    // Hammer a single logical line; rotation must spread the writes
    // over many distinct physical lines.
    StartGapMapper sg(32, 1);
    std::set<std::uint64_t> touched;
    for (int i = 0; i < 4000; ++i) {
        touched.insert(sg.map(7));
        sg.recordWrite(); // copies modeled elsewhere
    }
    EXPECT_GT(touched.size(), 30u);
}

TEST(StartGapDeathTest, RejectsDegenerateConfigs)
{
    EXPECT_DEATH(StartGapMapper(0), "at least one line");
    EXPECT_DEATH(StartGapMapper(4, 0), "period");
    StartGapMapper sg(4);
    EXPECT_DEATH(sg.map(4), "out of range");
}

} // namespace
} // namespace ctrl
} // namespace dramless
