/**
 * @file
 * Unit and property tests of Start-Gap wear leveling.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "ctrl/start_gap.hh"
#include "sim/random.hh"

namespace dramless
{
namespace ctrl
{
namespace
{

TEST(StartGapTest, InitialMappingIsIdentity)
{
    StartGapMapper sg(8);
    for (std::uint64_t la = 0; la < 8; ++la)
        EXPECT_EQ(sg.map(la), la);
    EXPECT_EQ(sg.numPhysicalLines(), 9u);
}

TEST(StartGapTest, MappingStaysInjective)
{
    StartGapMapper sg(16, 1); // move on every write
    for (int round = 0; round < 200; ++round) {
        std::set<std::uint64_t> used;
        for (std::uint64_t la = 0; la < 16; ++la) {
            std::uint64_t pa = sg.map(la);
            EXPECT_LT(pa, sg.numPhysicalLines());
            EXPECT_TRUE(used.insert(pa).second)
                << "collision after " << round << " moves";
        }
        sg.recordWrite();
    }
}

TEST(StartGapTest, GapMovePeriodRespected)
{
    StartGapMapper sg(8, 5);
    int moves = 0;
    for (int i = 0; i < 50; ++i)
        moves += sg.recordWrite() ? 1 : 0;
    EXPECT_EQ(moves, 10);
    EXPECT_EQ(sg.gapMoves(), 10u);
    EXPECT_EQ(sg.writeCount(), 50u);
}

TEST(StartGapTest, GapMoveWritesCountedButNeverFeedThePeriod)
{
    // Gap-move copies wear the media like demand writes, but they
    // must not advance the gap-move counter themselves — otherwise
    // the rotation would self-accelerate. 120 demand writes at
    // period 3 is exactly 40 moves, no more.
    StartGapMapper sg(8, 3);
    for (int i = 0; i < 120; ++i)
        sg.recordWrite();
    EXPECT_EQ(sg.writeCount(), 120u);
    EXPECT_EQ(sg.gapMoves(), 40u);
    EXPECT_EQ(sg.gapMoveWrites(), 40u);
    EXPECT_EQ(sg.totalLineWrites(), 160u);
}

TEST(StartGapTest, DataSurvivesRotationProperty)
{
    // Shadow-model: physical lines hold values; on each gap move we
    // perform the copy the mapper requests, and logical reads must
    // always return what was logically written.
    constexpr std::uint64_t lines = 12;
    StartGapMapper sg(lines, 3);
    std::vector<int> physical(sg.numPhysicalLines(), -1);
    std::map<std::uint64_t, int> logical;

    Random rng(99);
    int next_value = 0;
    for (int step = 0; step < 2000; ++step) {
        std::uint64_t la = rng.below(lines);
        int v = next_value++;
        physical[sg.map(la)] = v;
        logical[la] = v;
        if (sg.recordWrite())
            physical[sg.movedTo()] = physical[sg.movedFrom()];
        // Verify every logical line still reads its last write.
        for (const auto &[l, val] : logical)
            ASSERT_EQ(physical[sg.map(l)], val)
                << "corruption at step " << step << " line " << l;
    }
    EXPECT_GT(sg.gapMoves(), 500u);
}

TEST(StartGapTest, FullRotationReturnsToIdentity)
{
    // After N+1 gap moves the gap is back at the top and Start has
    // advanced once; after N*(N+1) moves the mapping cycles fully.
    constexpr std::uint64_t n = 6;
    StartGapMapper sg(n, 1);
    std::vector<std::uint64_t> initial;
    for (std::uint64_t la = 0; la < n; ++la)
        initial.push_back(sg.map(la));
    for (std::uint64_t i = 0; i < n * (n + 1); ++i)
        sg.recordWrite();
    for (std::uint64_t la = 0; la < n; ++la)
        EXPECT_EQ(sg.map(la), initial[la]);
}

TEST(StartGapTest, WearSpreadsAcrossPhysicalLines)
{
    // Hammer a single logical line; rotation must spread the writes
    // over many distinct physical lines.
    StartGapMapper sg(32, 1);
    std::set<std::uint64_t> touched;
    for (int i = 0; i < 4000; ++i) {
        touched.insert(sg.map(7));
        sg.recordWrite(); // copies modeled elsewhere
    }
    EXPECT_GT(touched.size(), 30u);
}

TEST(StartGapTest, BijectionAndGapCoverageProperty)
{
    // Across well over 2*N*period writes: map() must stay a bijection
    // from the N logical lines onto the N+1 physical lines minus the
    // current gap; every reported move must name valid physical lines
    // with movedTo() being the previous gap; and the rotation must
    // eventually park the gap on every physical line (including the
    // gapPos == 0 wrap back to the top).
    constexpr std::uint64_t n = 10;
    constexpr std::uint64_t period = 4;
    StartGapMapper sg(n, period);
    const std::uint64_t phys = sg.numPhysicalLines();

    auto gapOf = [&]() {
        // The gap is the one physical line no logical line maps to.
        std::vector<bool> used(phys, false);
        for (std::uint64_t la = 0; la < n; ++la) {
            std::uint64_t pa = sg.map(la);
            EXPECT_LT(pa, phys);
            EXPECT_FALSE(used[pa]) << "map() not injective";
            used[pa] = true;
        }
        std::uint64_t gap = phys;
        for (std::uint64_t pa = 0; pa < phys; ++pa) {
            if (!used[pa]) {
                EXPECT_EQ(gap, phys) << "more than one unmapped line";
                gap = pa;
            }
        }
        EXPECT_LT(gap, phys) << "no gap line left unmapped";
        return gap;
    };

    std::set<std::uint64_t> gap_positions;
    std::uint64_t gap_before = gapOf();
    gap_positions.insert(gap_before);

    const std::uint64_t writes = 3 * n * period * (n + 1);
    for (std::uint64_t w = 0; w < writes; ++w) {
        bool moved = sg.recordWrite();
        std::uint64_t gap_after = gapOf();
        if (moved) {
            EXPECT_LT(sg.movedFrom(), phys);
            EXPECT_LT(sg.movedTo(), phys);
            EXPECT_NE(sg.movedFrom(), sg.movedTo());
            // The old gap received the copy; the source became the
            // new gap (on wrap: from the top physical line).
            EXPECT_EQ(sg.movedTo(), gap_before);
            EXPECT_EQ(sg.movedFrom(), gap_after);
            if (gap_before == 0)
                EXPECT_EQ(gap_after, phys - 1) << "wrap must jump to top";
        } else {
            EXPECT_EQ(gap_after, gap_before) << "gap moved off-period";
        }
        gap_before = gap_after;
        gap_positions.insert(gap_after);
    }
    EXPECT_EQ(gap_positions.size(), phys)
        << "every physical line must eventually serve as the gap";
}

TEST(StartGapDeathTest, RejectsDegenerateConfigs)
{
    EXPECT_DEATH(StartGapMapper(0), "at least one line");
    EXPECT_DEATH(StartGapMapper(4, 0), "period");
    StartGapMapper sg(4);
    EXPECT_DEATH(sg.map(4), "out of range");
}

} // namespace
} // namespace ctrl
} // namespace dramless
