/**
 * @file
 * Unit tests of the energy model: breakdown arithmetic, helper
 * conversions, and the system-level accounting functions.
 */

#include <gtest/gtest.h>

#include "accel/accelerator.hh"
#include "energy/energy_model.hh"
#include "systems/energy_accounting.hh"

namespace dramless
{
namespace energy
{
namespace
{

TEST(EnergyHelpersTest, UnitConversions)
{
    // 10 W over 1 ms = 10 mJ.
    EXPECT_NEAR(wattsOver(10.0, fromMs(1)), 0.010, 1e-12);
    // 2 pJ/bit over 1 Mbit = 2 uJ.
    EXPECT_NEAR(perBit(2.0, 1'000'000), 2e-6, 1e-15);
    // 45 pJ/B over 1 MB = 45 uJ.
    EXPECT_NEAR(perByte(45.0, 1'000'000), 45e-6, 1e-15);
}

TEST(EnergyBreakdownTest, TotalsAndAccumulation)
{
    EnergyBreakdown a;
    a.hostStack = 1.0;
    a.pcie = 0.5;
    a.accelCores = 2.0;
    EnergyBreakdown b;
    b.dram = 0.25;
    b.storageMedia = 0.125;
    b.controller = 0.0625;
    a += b;
    EXPECT_DOUBLE_EQ(a.total(), 3.9375);
    EXPECT_DOUBLE_EQ(a.dram, 0.25);
}

TEST(EnergyParamsTest, DefaultsAreOrdered)
{
    EnergyParams p = EnergyParams::paperDefault();
    // Active > stall > sleep for PE cores.
    EXPECT_GT(p.peActiveWatts, p.peStallWatts);
    EXPECT_GT(p.peStallWatts, p.peSleepWatts);
    // PRAM SET is the expensive pulse train.
    EXPECT_GT(p.pramSetPicojoulePerBit, p.pramReadPicojoulePerBit);
    // Flash programs cost more than reads, erases more than both.
    EXPECT_GT(p.flashProgramMicrojoulePerPage,
              p.flashReadMicrojoulePerPage);
    EXPECT_GT(p.flashEraseMicrojoulePerBlock,
              p.flashProgramMicrojoulePerPage);
    // Host active power dominates its idle/coordination power.
    EXPECT_GT(p.hostActiveWatts, p.hostIdleWatts);
    EXPECT_GT(p.hostIdleWatts, p.hostCoordinationWatts - 5.0);
}

TEST(PowerSeriesTest, CumulativeEnergyEndsAtTotal)
{
    stats::TimeSeries power("p");
    // Constant 4 W from 0 to 1 ms, sampled every 100 us.
    for (int i = 0; i <= 10; ++i)
        power.record(Tick(i) * fromUs(100), 4.0);
    double total = 0.010; // 10 mJ claimed total
    stats::TimeSeries cum = systems::cumulativeEnergySeries(
        power, total, 0, fromMs(1));
    ASSERT_FALSE(cum.empty());
    // Non-decreasing and final point equals the claimed total.
    double prev = -1.0;
    for (const auto &pt : cum.samples()) {
        EXPECT_GE(pt.value, prev);
        prev = pt.value;
    }
    EXPECT_NEAR(prev, total, total * 0.02);
}

TEST(PowerSeriesTest, CumulativeEnergyIntegratesTailToRunEnd)
{
    // Regression: the stretch from the last power sample to the end
    // of the run used to be dropped from the core integral, leaving
    // the final cumulative point short of the run total.
    stats::TimeSeries power("p");
    // Constant 4 W sampled only over the first half of a 1 ms run.
    for (int i = 0; i <= 5; ++i)
        power.record(Tick(i) * fromUs(100), 4.0);
    double total = 0.010; // core contributes 4 mJ of the 10 mJ
    stats::TimeSeries cum = systems::cumulativeEnergySeries(
        power, total, 0, fromMs(1));
    ASSERT_FALSE(cum.empty());
    // The series now closes the window: last point sits at the run
    // end and integrates exactly to the run's total joules.
    EXPECT_EQ(cum.samples().back().when, fromMs(1));
    EXPECT_NEAR(cum.samples().back().value, total, total * 1e-9);
    double prev = -1.0;
    for (const auto &pt : cum.samples()) {
        EXPECT_GE(pt.value, prev);
        prev = pt.value;
    }
}

TEST(PowerSeriesTest, CorePowerReflectsActivity)
{
    // Build a minimal accelerator, run a compute-only kernel, and
    // check the power series tracks activity between stall and
    // active levels.
    setQuiet(true);
    EventQueue eq;
    accel::AcceleratorConfig acfg;
    acfg.numPes = 3;
    acfg.sampleInterval = fromUs(5);
    accel::Accelerator accel(eq, acfg, "a");

    class Backend : public accel::MemoryBackend
    {
      public:
        explicit Backend(EventQueue &eq) : eq_(eq), ev_([this] {
            for (auto &[id, t] : pending_)
                cb_(id, t);
            pending_.clear();
        }, "b") {}
        void setCallback(Callback cb) override { cb_ = std::move(cb); }
        bool canAccept(std::uint32_t) const override { return true; }
        std::uint64_t
        submit(std::uint64_t, std::uint32_t, bool) override
        {
            std::uint64_t id = next_++;
            pending_.emplace_back(id, eq_.curTick() + fromNs(200));
            eq_.reschedule(&ev_, eq_.curTick() + fromNs(200));
            return id;
        }
        std::uint64_t capacity() const override { return 1ull << 30; }

      private:
        EventQueue &eq_;
        Callback cb_;
        std::uint64_t next_ = 1;
        std::vector<std::pair<std::uint64_t, Tick>> pending_;
        EventFunctionWrapper ev_;
    } backend(eq);
    accel.attachBackend(&backend);

    class Busy : public accel::TraceSource
    {
      public:
        bool
        next(accel::TraceItem &out) override
        {
            if (n_++ >= 40)
                return false;
            out = accel::TraceItem::computeOf(20000);
            return true;
        }

      private:
        int n_ = 0;
    } trace;

    accel::KernelLaunch launch;
    launch.agentTraces = {&trace};
    launch.imageResident = true;
    bool done = false;
    accel.launch(launch, [&](Tick) { done = true; });
    while (!done && eq.step()) {
    }
    eq.run();

    EnergyParams p;
    stats::TimeSeries power =
        systems::corePowerSeries(accel, 2, p);
    ASSERT_GE(power.size(), 3u);
    double floor = 2 * p.peStallWatts + p.uncoreWatts;
    double ceil = 2 * p.peActiveWatts + p.uncoreWatts;
    double peak = 0.0;
    for (const auto &pt : power.samples()) {
        EXPECT_GE(pt.value, floor - 1e-9);
        EXPECT_LE(pt.value, ceil + 1e-9);
        peak = std::max(peak, pt.value);
    }
    // A compute-bound agent drives the sample above the stall floor.
    EXPECT_GT(peak, floor + 0.2);
}

TEST(AccountingTest, CoreEnergySplitsByResidency)
{
    setQuiet(true);
    EventQueue eq;
    accel::AcceleratorConfig acfg;
    acfg.numPes = 2;
    accel::Accelerator accel(eq, acfg, "a");
    // No run at all: the lone agent sleeps from 0 to 1 ms.
    EnergyParams p;
    EnergyBreakdown e =
        systems::accelCoreEnergy(accel, 0, fromMs(1), 1, p);
    double expected = wattsOver(p.peSleepWatts, fromMs(1)) +
                      wattsOver(p.uncoreWatts, fromMs(1));
    EXPECT_NEAR(e.accelCores, expected, expected * 0.01);
}

} // namespace
} // namespace energy
} // namespace dramless
