/**
 * @file
 * Golden-file regression test pinning the DNN inference matrix: the
 * three named networks (lenet / mlp / ffn, batch 1) run through the
 * three headline organizations. DNN traces are pure functions of
 * (network, partition, layout) — no RNG at all — so any drift here
 * means either the trace schedule, the layout, or a system model
 * changed: review it, then bless intended changes by regenerating.
 *
 * Regenerate with:
 *   DRAMLESS_UPDATE_GOLDEN=1 build/tests/workload/dnn_tests \
 *       --gtest_filter='DnnGoldenTest.*'
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/sweep_runner.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "workload/dnn.hh"

#ifndef DRAMLESS_GOLDEN_DIR
#error "DRAMLESS_GOLDEN_DIR must point at tests/workload/golden"
#endif

namespace dramless
{
namespace
{

const std::vector<systems::SystemKind> kGoldenKinds = {
    systems::SystemKind::dramLess,
    systems::SystemKind::integratedSlc,
    systems::SystemKind::hetero,
};

/** Render one run as stable "system/workload key value" lines. */
void
emitRun(std::ostringstream &os, const systems::RunResult &r)
{
    const std::string id = r.system + "/" + r.workload;
    auto tick = [&](const char *key, Tick t) {
        os << id << " " << key << " " << t << "\n";
    };
    auto num = [&](const char *key, double v) {
        os << id << " " << key << " " << json::number(v) << "\n";
    };
    tick("exec_time_ticks", r.execTime);
    tick("host_stack_ticks", r.hostStackTime);
    tick("transfer_ticks", r.transferTime);
    tick("storage_stall_ticks", r.storageStallTime);
    tick("compute_ticks", r.computeTime);
    num("energy_total_j", r.energy.total());
    num("bandwidth_mbps", r.bandwidthMBps);
    os << id << " total_instructions " << r.totalInstructions << "\n";
    os << id << " bytes_processed " << r.bytesProcessed << "\n";
}

std::string
currentSnapshot()
{
    setQuiet(true);
    systems::SystemOptions opts; // scale 1.0: the networks are tiny

    std::vector<std::shared_ptr<const workload::WorkloadModel>>
        models;
    for (const char *net : {"lenet", "mlp", "ffn"})
        models.push_back(workload::dnnModelFor(net, 1));

    auto jobs = runner::makeMatrixJobs(kGoldenKinds, models, opts);
    auto results = runner::SweepRunner(2).run(jobs);

    std::ostringstream os;
    os << "# Golden DNN inference metrics, lenet/mlp/ffn batch 1. "
          "Regenerate with DRAMLESS_UPDATE_GOLDEN=1.\n";
    for (const auto &r : results)
        emitRun(os, r);
    return os.str();
}

std::string
goldenPath()
{
    return std::string(DRAMLESS_GOLDEN_DIR) + "/dnn_metrics.txt";
}

TEST(DnnGoldenTest, DnnMatrixMatchesGoldenFile)
{
    const std::string snapshot = currentSnapshot();

    if (std::getenv("DRAMLESS_UPDATE_GOLDEN")) {
        std::ofstream out(goldenPath(), std::ios::trunc);
        ASSERT_TRUE(out.good())
            << "cannot write golden file " << goldenPath();
        out << snapshot;
        out.close();
        GTEST_SKIP() << "golden file regenerated: " << goldenPath();
    }

    std::ifstream in(goldenPath());
    ASSERT_TRUE(in.good())
        << "missing golden file " << goldenPath()
        << " — regenerate with DRAMLESS_UPDATE_GOLDEN=1";
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string golden = buf.str();

    if (snapshot == golden)
        return;

    std::istringstream a(golden), b(snapshot);
    std::string la, lb;
    std::size_t lineno = 0;
    while (true) {
        bool ga = bool(std::getline(a, la));
        bool gb = bool(std::getline(b, lb));
        ++lineno;
        if (!ga && !gb)
            break;
        if (!ga || !gb || la != lb) {
            FAIL() << "golden mismatch at line " << lineno
                   << "\n  golden:  " << (ga ? la : "<eof>")
                   << "\n  current: " << (gb ? lb : "<eof>")
                   << "\nIf this change is intended, regenerate with "
                      "DRAMLESS_UPDATE_GOLDEN=1";
        }
    }
    FAIL() << "snapshot differs from golden file";
}

TEST(DnnGoldenTest, SnapshotIsStableAcrossRepeatedRuns)
{
    EXPECT_EQ(currentSnapshot(), currentSnapshot());
}

} // namespace
} // namespace dramless
