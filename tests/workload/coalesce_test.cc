/**
 * @file
 * Unit and differential tests of the burst coalescer.
 *
 * The differential oracle pins the coalescer's correctness contract:
 * for the Polybench generator and all three graph kernels, the
 * coalesced stream covers exactly the same byte set as the wrapped
 * stream with identical per-kind word and instruction totals. The
 * rewind tests pin that a partially consumed source restarts from a
 * clean slate (staging queues cleared, RNG reseeded).
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "workload/coalesce.hh"
#include "workload/graph.hh"
#include "workload/trace_gen.hh"

namespace dramless
{
namespace workload
{
namespace
{

using accel::TraceItem;

/** Scripted source: replays a fixed item vector. */
class ScriptedSource : public AgentTraceSource
{
  public:
    explicit ScriptedSource(std::vector<TraceItem> items)
        : items_(std::move(items))
    {}

    bool
    next(TraceItem &out) override
    {
        if (pos_ >= items_.size())
            return false;
        out = items_[pos_++];
        return true;
    }

    void rewind() override { pos_ = 0; }

    std::pair<std::uint64_t, std::uint64_t>
    outputRegion() const override
    {
        return {0, 0};
    }

  private:
    std::vector<TraceItem> items_;
    std::size_t pos_ = 0;
};

/** Per-kind word totals and byte coverage of a trace. */
struct WordSummary
{
    std::uint64_t loadWords = 0, storeWords = 0, instructions = 0;
    std::uint64_t items = 0;
    std::set<std::uint64_t> loadAddrs, storeAddrs;
};

WordSummary
drainWords(accel::TraceSource &src)
{
    WordSummary s;
    TraceItem it;
    while (src.next(it)) {
        ++s.items;
        if (it.kind == TraceItem::Kind::compute) {
            s.instructions += it.instructions;
            continue;
        }
        bool load = it.kind == TraceItem::Kind::load;
        (load ? s.loadWords : s.storeWords) += it.burst;
        for (std::uint32_t w = 0; w < it.burst; ++w) {
            (load ? s.loadAddrs : s.storeAddrs)
                .insert(it.addr + std::uint64_t(w) * it.size);
        }
    }
    return s;
}

std::vector<TraceItem>
drainItems(accel::TraceSource &src)
{
    std::vector<TraceItem> v;
    TraceItem it;
    while (src.next(it))
        v.push_back(it);
    return v;
}

bool
sameItems(const std::vector<TraceItem> &a,
          const std::vector<TraceItem> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].kind != b[i].kind || a[i].addr != b[i].addr ||
            a[i].size != b[i].size || a[i].burst != b[i].burst ||
            a[i].instructions != b[i].instructions) {
            return false;
        }
    }
    return true;
}

// ------------------------------ unit -------------------------------

TEST(CoalesceTest, ContiguousRunMergesToOneBurst)
{
    std::vector<TraceItem> in;
    for (std::uint64_t i = 0; i < 8; ++i)
        in.push_back(TraceItem::loadOf(i * 32, 32));
    CoalescingTraceSource c(
        std::make_unique<ScriptedSource>(in), 512);
    auto out = drainItems(c);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].kind, TraceItem::Kind::load);
    EXPECT_EQ(out[0].addr, 0u);
    EXPECT_EQ(out[0].size, 32u);
    EXPECT_EQ(out[0].burst, 8u);
    EXPECT_EQ(out[0].bytes(), 256u);
    EXPECT_EQ(c.coalesceStats().wordsIn, 8u);
    EXPECT_EQ(c.coalesceStats().burstsOut, 1u);
}

TEST(CoalesceTest, RunsNeverCrossAlignedBoundary)
{
    // 32 words spanning [448, 1472): the 512-aligned windows split
    // the run at 512 and 1024 even though the words are contiguous.
    std::vector<TraceItem> in;
    for (std::uint64_t i = 0; i < 32; ++i)
        in.push_back(TraceItem::loadOf(448 + i * 32, 32));
    CoalescingTraceSource c(
        std::make_unique<ScriptedSource>(in), 512);
    auto out = drainItems(c);
    ASSERT_EQ(out.size(), 3u);
    for (const auto &it : out) {
        EXPECT_LE(it.bytes(), 512u);
        EXPECT_EQ(it.addr / 512,
                  (it.addr + it.bytes() - 1) / 512);
    }
    EXPECT_EQ(out[0].addr, 448u);
    EXPECT_EQ(out[0].burst, 2u);
    EXPECT_EQ(out[1].addr, 512u);
    EXPECT_EQ(out[1].burst, 16u);
    EXPECT_EQ(out[2].addr, 1024u);
    EXPECT_EQ(out[2].burst, 14u);
}

TEST(CoalesceTest, InterleavedStreamsEachCoalesce)
{
    // A load stream and a store stream interleaved word by word:
    // separate ways keep both runs open.
    std::vector<TraceItem> in;
    for (std::uint64_t i = 0; i < 8; ++i) {
        in.push_back(TraceItem::loadOf(i * 32, 32));
        in.push_back(TraceItem::storeOf(4096 + i * 32, 32));
    }
    CoalescingTraceSource c(
        std::make_unique<ScriptedSource>(in), 512);
    auto out = drainItems(c);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].burst, 8u);
    EXPECT_EQ(out[1].burst, 8u);
    EXPECT_NE(out[0].kind, out[1].kind);
}

TEST(CoalesceTest, ComputeAccumulatesAndIssuesAheadOfItsRun)
{
    std::vector<TraceItem> in;
    in.push_back(TraceItem::computeOf(3));
    in.push_back(TraceItem::computeOf(4));
    in.push_back(TraceItem::loadOf(0, 32));
    in.push_back(TraceItem::loadOf(32, 32));
    CoalescingTraceSource c(
        std::make_unique<ScriptedSource>(in), 512);
    auto out = drainItems(c);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].kind, TraceItem::Kind::compute);
    EXPECT_EQ(out[0].instructions, 7u);
    EXPECT_EQ(out[1].kind, TraceItem::Kind::load);
    EXPECT_EQ(out[1].burst, 2u);
    EXPECT_EQ(c.coalesceStats().computeIn, 2u);
    EXPECT_EQ(c.coalesceStats().computeOut, 1u);
}

TEST(CoalesceTest, OversizedItemsPassThroughInOrder)
{
    std::vector<TraceItem> in;
    in.push_back(TraceItem::loadOf(0, 32));
    in.push_back(TraceItem::loadOf(8192, 1024)); // >= maxBurst
    in.push_back(TraceItem::loadOf(32, 32));
    CoalescingTraceSource c(
        std::make_unique<ScriptedSource>(in), 512);
    auto out = drainItems(c);
    ASSERT_EQ(out.size(), 3u);
    // The open run flushes before the oversized item to preserve
    // stream order.
    EXPECT_EQ(out[0].addr, 0u);
    EXPECT_EQ(out[1].addr, 8192u);
    EXPECT_EQ(out[1].size, 1024u);
    EXPECT_EQ(out[2].addr, 32u);
}

TEST(CoalesceTest, OverlappingWordFlushesTheOpenRun)
{
    // The second load of word 0 cannot merge behind the open run
    // that already contains it; the run must flush first.
    std::vector<TraceItem> in;
    in.push_back(TraceItem::loadOf(0, 32));
    in.push_back(TraceItem::loadOf(32, 32));
    in.push_back(TraceItem::loadOf(0, 32));
    CoalescingTraceSource c(
        std::make_unique<ScriptedSource>(in), 512);
    auto out = drainItems(c);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].addr, 0u);
    EXPECT_EQ(out[0].burst, 2u);
    EXPECT_EQ(out[1].addr, 0u);
    EXPECT_EQ(out[1].burst, 1u);
}

TEST(CoalesceTest, LruRunEvictsWhenWaysExhaust)
{
    // Five disjoint single-word streams against 4 ways: the oldest
    // run is evicted (flushed) to make room.
    std::vector<TraceItem> in;
    for (std::uint64_t s = 0; s < 5; ++s)
        in.push_back(TraceItem::loadOf(s * 4096, 32));
    CoalescingTraceSource c(
        std::make_unique<ScriptedSource>(in), 512, 4);
    auto out = drainItems(c);
    ASSERT_EQ(out.size(), 5u);
    // The evicted (oldest) run emerges first.
    EXPECT_EQ(out[0].addr, 0u);
    std::uint64_t words = 0;
    for (const auto &it : out)
        words += it.burst;
    EXPECT_EQ(words, 5u);
}

TEST(CoalesceTest, WrapCoalescingDisablesAtWordGranularity)
{
    auto inner = std::make_unique<ScriptedSource>(
        std::vector<TraceItem>{});
    auto wrapped = wrapCoalescing(std::move(inner), 32);
    EXPECT_EQ(dynamic_cast<CoalescingTraceSource *>(wrapped.get()),
              nullptr);
    auto inner2 = std::make_unique<ScriptedSource>(
        std::vector<TraceItem>{});
    auto wrapped2 = wrapCoalescing(std::move(inner2), 512);
    EXPECT_NE(dynamic_cast<CoalescingTraceSource *>(wrapped2.get()),
              nullptr);
}

// --------------------------- differential --------------------------

TraceGenConfig
genConfig(const char *kernel, double scale = 0.002)
{
    TraceGenConfig cfg;
    cfg.spec = Polybench::byName(kernel).scaled(scale);
    cfg.seed = 11;
    return cfg;
}

void
expectEquivalentStreams(AgentTraceSource &plain,
                        CoalescingTraceSource &coalesced)
{
    WordSummary a = drainWords(plain);
    WordSummary b = drainWords(coalesced);
    EXPECT_EQ(a.loadWords, b.loadWords);
    EXPECT_EQ(a.storeWords, b.storeWords);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.loadAddrs, b.loadAddrs);
    EXPECT_EQ(a.storeAddrs, b.storeAddrs);
    // The whole point: materially fewer items downstream.
    EXPECT_LT(b.items, a.items);
    EXPECT_EQ(coalesced.coalesceStats().wordsIn,
              a.loadWords + a.storeWords);
}

TEST(CoalesceDifferentialTest, PolybenchStreamsAreEquivalent)
{
    // One kernel per access pattern: streaming, strided, random,
    // triangular, stencil.
    for (const char *kernel :
         {"gemver", "doitg", "durbin", "lu", "seidel"}) {
        SCOPED_TRACE(kernel);
        PolybenchTraceSource plain(genConfig(kernel));
        CoalescingTraceSource coalesced(
            std::make_unique<PolybenchTraceSource>(
                genConfig(kernel)),
            512);
        expectEquivalentStreams(plain, coalesced);
    }
}

GraphWorkloadConfig
graphConfig(GraphKernel kernel)
{
    GraphWorkloadConfig cfg;
    cfg.kernel = kernel;
    cfg.graph.numVertices = 2048;
    cfg.graph.edgeFactor = 8.0;
    cfg.graph.seed = 7;
    cfg.iterations = 2;
    return cfg;
}

TEST(CoalesceDifferentialTest, GraphKernelStreamsAreEquivalent)
{
    for (GraphKernel kernel : {GraphKernel::bfs, GraphKernel::pagerank,
                               GraphKernel::spmv}) {
        SCOPED_TRACE(int(kernel));
        GraphWorkload w(graphConfig(kernel));
        AgentTraceParams p;
        p.numAgents = 2;
        auto plain = w.makeAgentTrace(p);
        CoalescingTraceSource coalesced(w.makeAgentTrace(p), 512);
        expectEquivalentStreams(*plain, coalesced);
    }
}

// ----------------------------- rewind ------------------------------

/** Drain k items, rewind, and expect a full drain to match a fresh
 *  full drain. */
void
expectRewindDeterminism(AgentTraceSource &src, std::size_t k)
{
    std::vector<TraceItem> full = drainItems(src);
    ASSERT_GT(full.size(), k);
    src.rewind();
    TraceItem it;
    for (std::size_t i = 0; i < k; ++i)
        ASSERT_TRUE(src.next(it));
    src.rewind();
    std::vector<TraceItem> again = drainItems(src);
    EXPECT_TRUE(sameItems(full, again));
}

TEST(RewindTest, PolybenchMidStreamRewindIsDeterministic)
{
    // Random and triangular patterns exercise the RNG reseed; the
    // streaming kernel exercises the staging-queue clear.
    for (const char *kernel : {"durbin", "lu", "gemver"}) {
        SCOPED_TRACE(kernel);
        PolybenchTraceSource src(genConfig(kernel));
        expectRewindDeterminism(src, 17);
    }
}

TEST(RewindTest, GraphMidStreamRewindIsDeterministic)
{
    for (GraphKernel kernel : {GraphKernel::bfs, GraphKernel::pagerank,
                               GraphKernel::spmv}) {
        SCOPED_TRACE(int(kernel));
        GraphWorkload w(graphConfig(kernel));
        AgentTraceParams p;
        p.numAgents = 2;
        auto src = w.makeAgentTrace(p);
        expectRewindDeterminism(*src, 23);
    }
}

TEST(RewindTest, CoalescerMidStreamRewindIsDeterministic)
{
    CoalescingTraceSource src(
        std::make_unique<PolybenchTraceSource>(genConfig("doitg")),
        512);
    expectRewindDeterminism(src, 9);
    // Stats restart with the stream.
    std::uint64_t words = src.coalesceStats().wordsIn;
    src.rewind();
    EXPECT_EQ(src.coalesceStats().wordsIn, 0u);
    drainItems(src);
    EXPECT_EQ(src.coalesceStats().wordsIn, words);
}

} // anonymous namespace
} // namespace workload
} // namespace dramless
