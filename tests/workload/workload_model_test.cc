/**
 * @file
 * Tests of the WorkloadModel abstraction: the PolybenchModel adapter
 * must be a faithful drop-in for direct PolybenchTraceSource use, and
 * the Polybench descriptor helpers must stay total over their enums.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "workload/trace_gen.hh"
#include "workload/workload_model.hh"

namespace dramless
{
namespace workload
{
namespace
{

std::vector<accel::TraceItem>
drain(accel::TraceSource &src)
{
    std::vector<accel::TraceItem> items;
    accel::TraceItem it;
    while (src.next(it))
        items.push_back(it);
    return items;
}

TEST(WorkloadModelTest, ModelForAdaptsTheSpec)
{
    const WorkloadSpec &spec = Polybench::byName("gemver");
    auto model = modelFor(spec);
    EXPECT_EQ(model->spec().name, spec.name);
    EXPECT_EQ(model->spec().inputBytes, spec.inputBytes);
    EXPECT_EQ(model->spec().outputBytes, spec.outputBytes);
}

TEST(WorkloadModelTest, ModelTraceMatchesDirectGenerator)
{
    const WorkloadSpec &spec = Polybench::byName("gemver");
    auto model = modelFor(spec);

    AgentTraceParams p;
    p.inputBase = 0x1000;
    p.agentIndex = 1;
    p.numAgents = 3;
    p.seed = 7;
    auto via_model = model->makeAgentTrace(p);

    TraceGenConfig tc;
    tc.spec = spec;
    tc.inputBase = p.inputBase;
    tc.agentIndex = p.agentIndex;
    tc.numAgents = p.numAgents;
    tc.seed = p.seed;
    PolybenchTraceSource direct(tc);

    auto a = drain(*via_model);
    auto b = drain(direct);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, b[i].kind) << i;
        EXPECT_EQ(a[i].addr, b[i].addr) << i;
        EXPECT_EQ(a[i].size, b[i].size) << i;
        EXPECT_EQ(a[i].instructions, b[i].instructions) << i;
    }
    // And the AgentTraceSource surface works through the interface.
    via_model->rewind();
    EXPECT_EQ(drain(*via_model).size(), a.size());
    auto [out_base, out_size] = via_model->outputRegion();
    EXPECT_GT(out_size, 0u);
    EXPECT_GE(out_base, p.inputBase + spec.inputBytes);
}

TEST(WorkloadModelTest, ScaledAndDefaultChunkedScaleVolumes)
{
    auto model = modelFor(Polybench::byName("doitg"));
    auto half = model->scaled(0.5);
    EXPECT_EQ(half->spec().name, model->spec().name);
    EXPECT_LT(half->spec().inputBytes, model->spec().inputBytes);
    // Regular kernels chunk by plain volume division.
    auto chunk = model->chunked(4);
    EXPECT_EQ(chunk->spec().inputBytes,
              model->scaled(0.25)->spec().inputBytes);
}

TEST(PolybenchTablesTest, AllScaledScalesEveryKernel)
{
    auto scaled = Polybench::allScaled(0.5);
    const auto &full = Polybench::all();
    ASSERT_EQ(scaled.size(), full.size());
    for (std::size_t i = 0; i < full.size(); ++i) {
        EXPECT_EQ(scaled[i].name, full[i].name);
        EXPECT_LE(scaled[i].inputBytes, full[i].inputBytes);
    }
}

TEST(PolybenchTablesTest, EnumLabelsAreTotalAndDistinct)
{
    std::set<std::string> patterns;
    for (Pattern p :
         {Pattern::streaming, Pattern::strided, Pattern::stencil,
          Pattern::randomAccess, Pattern::triangular}) {
        std::string s = Polybench::patternName(p);
        EXPECT_NE(s, "?");
        patterns.insert(s);
    }
    EXPECT_EQ(patterns.size(), 5u);

    std::set<std::string> classes;
    for (WorkloadClass c :
         {WorkloadClass::readIntensive, WorkloadClass::writeIntensive,
          WorkloadClass::computeIntensive,
          WorkloadClass::memoryIntensive, WorkloadClass::balanced}) {
        std::string s = Polybench::className(c);
        EXPECT_NE(s, "?");
        classes.insert(s);
    }
    EXPECT_EQ(classes.size(), 5u);
}

} // namespace
} // namespace workload
} // namespace dramless
