/**
 * @file
 * Unit tests of the Polybench workload descriptors and the trace
 * generator.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/polybench.hh"
#include "workload/trace_gen.hh"

namespace dramless
{
namespace workload
{
namespace
{

TEST(PolybenchTest, FifteenKernelsInFigureOrder)
{
    const auto &all = Polybench::all();
    ASSERT_EQ(all.size(), 15u);
    EXPECT_EQ(all.front().name, "adi");
    EXPECT_EQ(all.back().name, "trmm");
}

TEST(PolybenchTest, ClassificationsMatchPaper)
{
    // Section VI-A: read-intensive workloads.
    for (const char *name : {"durbin", "dynpro", "gemver", "trisolv"})
        EXPECT_EQ(Polybench::byName(name).klass,
                  WorkloadClass::readIntensive)
            << name;
    // Section VI-B: write-intensive workloads.
    for (const char *name : {"chol", "doitg", "lu", "seidel"}) {
        auto k = Polybench::byName(name).klass;
        EXPECT_TRUE(k == WorkloadClass::writeIntensive ||
                    k == WorkloadClass::computeIntensive)
            << name;
    }
}

TEST(PolybenchTest, WriteRatiosOrderSensibly)
{
    // doitg is the most write-intensive; durbin/trisolv the least.
    double doitg = Polybench::byName("doitg").writeRatio();
    for (const auto &spec : Polybench::all())
        EXPECT_LE(spec.writeRatio(), doitg + 1e-9) << spec.name;
    EXPECT_LT(Polybench::byName("durbin").writeRatio(), 0.1);
    EXPECT_LT(Polybench::byName("trisolv").writeRatio(), 0.1);
    EXPECT_GT(doitg, 0.4);
}

TEST(PolybenchTest, MemoryIntensiveKernelsCarryMostData)
{
    std::uint64_t max_other = 0;
    for (const auto &s : Polybench::all()) {
        if (s.klass != WorkloadClass::memoryIntensive)
            max_other = std::max(max_other, s.inputBytes);
    }
    for (const char *name : {"jaco1D", "jaco2D", "regd"})
        EXPECT_GE(Polybench::byName(name).inputBytes, max_other)
            << name;
}

TEST(PolybenchTest, ComputeIntensiveKernelsHaveHighOpsPerByte)
{
    for (const auto &s : Polybench::all()) {
        if (s.klass == WorkloadClass::computeIntensive)
            EXPECT_GE(s.opsPerByte, 8.0) << s.name;
        if (s.klass == WorkloadClass::readIntensive ||
            s.klass == WorkloadClass::memoryIntensive)
            EXPECT_LE(s.opsPerByte, 4.0) << s.name;
    }
}

TEST(PolybenchTest, ScalingKeepsAlignmentAndRatio)
{
    WorkloadSpec s = Polybench::byName("gemver");
    WorkloadSpec half = s.scaled(0.5);
    EXPECT_EQ(half.inputBytes % 32, 0u);
    EXPECT_EQ(half.outputBytes % 32, 0u);
    EXPECT_NEAR(half.writeRatio(), s.writeRatio(), 0.02);
    EXPECT_NEAR(double(half.inputBytes), double(s.inputBytes) / 2,
                64.0);
}

TEST(PolybenchDeathTest, UnknownNameAndBadScale)
{
    EXPECT_DEATH(Polybench::byName("nosuch"), "unknown");
    EXPECT_DEATH(Polybench::byName("gemver").scaled(0.0),
                 "positive");
}

// --------------------------- trace gen ----------------------------

/** Drain a trace and collect aggregate counts. */
struct TraceSummary
{
    std::uint64_t loadBytes = 0;
    std::uint64_t storeBytes = 0;
    std::uint64_t instructions = 0;
    std::set<std::uint64_t> loadAddrs;
    std::set<std::uint64_t> storeAddrs;
    std::uint64_t items = 0;
};

TraceSummary
drain(PolybenchTraceSource &src)
{
    TraceSummary s;
    accel::TraceItem it;
    while (src.next(it)) {
        ++s.items;
        switch (it.kind) {
          case accel::TraceItem::Kind::compute:
            s.instructions += it.instructions;
            break;
          case accel::TraceItem::Kind::load:
            s.loadBytes += it.size;
            s.loadAddrs.insert(it.addr);
            break;
          case accel::TraceItem::Kind::store:
            s.storeBytes += it.size;
            s.storeAddrs.insert(it.addr);
            break;
        }
    }
    return s;
}

TraceGenConfig
config(const char *name, double scale, std::uint32_t agent = 0,
       std::uint32_t agents = 1)
{
    TraceGenConfig tc;
    tc.spec = Polybench::byName(name).scaled(scale);
    tc.agentIndex = agent;
    tc.numAgents = agents;
    return tc;
}

TEST(TraceGenTest, StoreToLoadRatioMatchesSpec)
{
    for (const char *name : {"gemver", "doitg", "jaco1D", "adi"}) {
        TraceGenConfig tc = config(name, 0.05);
        PolybenchTraceSource src(tc);
        TraceSummary s = drain(src);
        EXPECT_EQ(s.loadBytes >= src.loadBytes(), true);
        double ratio = double(s.storeBytes) / double(s.loadBytes);
        double spec_ratio = double(tc.spec.outputBytes) /
                            double(tc.spec.inputBytes);
        // Stencils emit extra neighbour loads, lowering the ratio.
        if (tc.spec.pattern != Pattern::stencil)
            EXPECT_NEAR(ratio, spec_ratio, 0.15 * spec_ratio + 0.02)
                << name;
        EXPECT_GE(s.storeBytes, src.storeBytes()) << name;
    }
}

TEST(TraceGenTest, ComputeScalesWithOpsPerByte)
{
    TraceGenConfig lo = config("durbin", 0.05); // 2 ops/B
    TraceGenConfig hi = config("fdtdap", 0.05); // 11 ops/B
    PolybenchTraceSource src_lo(lo), src_hi(hi);
    TraceSummary a = drain(src_lo), b = drain(src_hi);
    double ia = double(a.instructions) / double(a.loadBytes);
    double ib = double(b.instructions) / double(b.loadBytes);
    EXPECT_NEAR(ia, 2.0, 0.3);
    EXPECT_NEAR(ib, 11.0, 1.5);
}

TEST(TraceGenTest, StreamingCoversWholeSlice)
{
    TraceGenConfig tc = config("trisolv", 0.05);
    PolybenchTraceSource src(tc);
    TraceSummary s = drain(src);
    // Every 32-byte input word is touched exactly once.
    EXPECT_EQ(s.loadAddrs.size(), src.loadBytes() / 32);
}

TEST(TraceGenTest, AgentsPartitionTheInput)
{
    constexpr std::uint32_t agents = 4;
    std::set<std::uint64_t> all_addrs;
    std::uint64_t total = 0;
    for (std::uint32_t a = 0; a < agents; ++a) {
        TraceGenConfig tc = config("trisolv", 0.05, a, agents);
        PolybenchTraceSource src(tc);
        TraceSummary s = drain(src);
        for (auto addr : s.loadAddrs) {
            EXPECT_TRUE(all_addrs.insert(addr).second)
                << "overlap at " << addr;
        }
        total += s.loadBytes;
    }
    EXPECT_NEAR(double(total),
                double(Polybench::byName("trisolv")
                           .scaled(0.05)
                           .inputBytes),
                4.0 * 32 * agents);
}

TEST(TraceGenTest, StridedWalksJumpRows)
{
    TraceGenConfig tc = config("trmm", 0.2);
    PolybenchTraceSource src(tc);
    accel::TraceItem a, b;
    // First two loads sit one row apart (column-major).
    while (src.next(a) && a.kind != accel::TraceItem::Kind::load) {
    }
    while (src.next(b) && b.kind != accel::TraceItem::Kind::load) {
    }
    EXPECT_EQ(b.addr - a.addr, tc.rowBytes);
}

TEST(TraceGenTest, StencilEmitsNeighbourRows)
{
    TraceGenConfig tc = config("jaco2D", 0.05);
    PolybenchTraceSource src(tc);
    TraceSummary s = drain(src);
    // 3 loads per 2 elements on average => load bytes ~2x slice.
    EXPECT_GT(s.loadBytes, src.loadBytes() * 3 / 2);
}

TEST(TraceGenTest, OutputRegionSeparateFromInput)
{
    TraceGenConfig tc = config("doitg", 0.05);
    PolybenchTraceSource src(tc);
    auto [out_base, out_size] = src.outputRegion();
    EXPECT_GE(out_base, tc.spec.inputBytes);
    TraceSummary s = drain(src);
    for (auto addr : s.storeAddrs) {
        EXPECT_GE(addr, out_base);
        EXPECT_LT(addr, out_base + out_size);
    }
    for (auto addr : s.loadAddrs)
        EXPECT_LT(addr, tc.spec.inputBytes);
}

TEST(TraceGenTest, RewindReproducesTheTrace)
{
    TraceGenConfig tc = config("dynpro", 0.02);
    PolybenchTraceSource src(tc);
    TraceSummary a = drain(src);
    src.rewind();
    TraceSummary b = drain(src);
    EXPECT_EQ(a.items, b.items);
    EXPECT_EQ(a.loadAddrs, b.loadAddrs);
    EXPECT_EQ(a.instructions, b.instructions);
}

TEST(TraceGenTest, DeterministicAcrossInstances)
{
    TraceGenConfig tc = config("floyd", 0.02);
    PolybenchTraceSource s1(tc), s2(tc);
    TraceSummary a = drain(s1), b = drain(s2);
    EXPECT_EQ(a.loadAddrs, b.loadAddrs);
    EXPECT_EQ(a.storeAddrs, b.storeAddrs);
}

TEST(TraceGenTest, RemainderUnitsSpreadAcrossAgents)
{
    // 13 input units and 5 output units over 4 agents: every whole
    // 32 B unit is owned by exactly one agent and none is dropped.
    // (The old flooring slice math left up to numAgents-1 tail units
    // of each region unread and unwritten.)
    WorkloadSpec s;
    s.name = "slice13";
    s.pattern = Pattern::streaming;
    s.klass = WorkloadClass::memoryIntensive;
    s.inputBytes = 13 * 32;
    s.outputBytes = 5 * 32;
    s.opsPerByte = 1.0;

    constexpr std::uint32_t agents = 4;
    std::set<std::uint64_t> in_addrs, out_addrs;
    std::uint64_t in_total = 0, out_total = 0;
    for (std::uint32_t a = 0; a < agents; ++a) {
        TraceGenConfig tc;
        tc.spec = s;
        tc.agentIndex = a;
        tc.numAgents = agents;
        PolybenchTraceSource src(tc);
        in_total += src.loadBytes();
        out_total += src.storeBytes();
        TraceSummary sum = drain(src);
        for (auto addr : sum.loadAddrs) {
            EXPECT_TRUE(in_addrs.insert(addr).second)
                << "input overlap at " << addr;
        }
        for (auto addr : sum.storeAddrs) {
            EXPECT_TRUE(out_addrs.insert(addr).second)
                << "output overlap at " << addr;
        }
    }
    EXPECT_EQ(in_total, s.inputBytes);
    EXPECT_EQ(out_total, s.outputBytes);
    EXPECT_EQ(in_addrs.size(), 13u);
    EXPECT_EQ(out_addrs.size(), 5u);
}

TEST(TraceGenTest, DegenerateVolumeAliasesLastUnit)
{
    // Fewer units than agents: every agent still gets (the same)
    // one unit of work rather than an empty trace.
    WorkloadSpec s;
    s.name = "tiny";
    s.pattern = Pattern::streaming;
    s.klass = WorkloadClass::memoryIntensive;
    s.inputBytes = 2 * 32;
    s.outputBytes = 32;
    s.opsPerByte = 1.0;
    for (std::uint32_t a = 0; a < 4; ++a) {
        TraceGenConfig tc;
        tc.spec = s;
        tc.agentIndex = a;
        tc.numAgents = 4;
        PolybenchTraceSource src(tc);
        EXPECT_EQ(src.loadBytes(), 32u) << "agent " << a;
        EXPECT_EQ(src.storeBytes(), 32u) << "agent " << a;
        TraceSummary sum = drain(src);
        EXPECT_GT(sum.items, 0u) << "agent " << a;
    }
}

TEST(TraceGenDeathTest, RejectsBadSlices)
{
    TraceGenConfig tc = config("gemver", 0.05);
    tc.agentIndex = 3;
    tc.numAgents = 2;
    EXPECT_DEATH(PolybenchTraceSource src(tc), "bad agent slice");
}

} // namespace
} // namespace workload
} // namespace dramless
