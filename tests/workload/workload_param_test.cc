/**
 * @file
 * Parameterized property tests over every Polybench kernel: trace
 * invariants that must hold regardless of pattern or class.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/polybench.hh"
#include "workload/trace_gen.hh"

namespace dramless
{
namespace workload
{
namespace
{

class WorkloadParamTest
    : public ::testing::TestWithParam<std::string>
{
  protected:
    WorkloadSpec
    spec() const
    {
        return Polybench::byName(GetParam()).scaled(0.04);
    }
};

TEST_P(WorkloadParamTest, TraceStaysInsideItsRegions)
{
    for (std::uint32_t agent : {0u, 3u, 6u}) {
        TraceGenConfig tc;
        tc.spec = spec();
        tc.agentIndex = agent;
        tc.numAgents = 7;
        PolybenchTraceSource src(tc);
        auto [out_base, out_size] = src.outputRegion();
        accel::TraceItem it;
        while (src.next(it)) {
            if (it.kind == accel::TraceItem::Kind::load) {
                EXPECT_LT(it.addr + it.size,
                          tc.spec.inputBytes + 32);
            } else if (it.kind == accel::TraceItem::Kind::store) {
                EXPECT_GE(it.addr, out_base);
                EXPECT_LT(it.addr + it.size,
                          out_base + out_size + 32);
            }
        }
    }
}

TEST_P(WorkloadParamTest, VolumesMatchSpecWithinTolerance)
{
    TraceGenConfig tc;
    tc.spec = spec();
    tc.numAgents = 1;
    PolybenchTraceSource src(tc);
    accel::TraceItem it;
    std::uint64_t lb = 0, sb = 0;
    while (src.next(it)) {
        if (it.kind == accel::TraceItem::Kind::load)
            lb += it.size;
        else if (it.kind == accel::TraceItem::Kind::store)
            sb += it.size;
    }
    // Loads cover at least the input once (stencils re-read rows).
    EXPECT_GE(lb, src.loadBytes());
    EXPECT_LE(lb, 3 * src.loadBytes());
    // Stores cover the output at least once, at most ~2x (pacing
    // rounding plus the final flush-to-volume).
    EXPECT_GE(sb, src.storeBytes());
    EXPECT_LE(sb, 2 * src.storeBytes() + 64);
}

TEST_P(WorkloadParamTest, AllItemsWellFormed)
{
    TraceGenConfig tc;
    tc.spec = spec();
    tc.numAgents = 7;
    tc.agentIndex = 2;
    PolybenchTraceSource src(tc);
    accel::TraceItem it;
    std::uint64_t items = 0;
    while (src.next(it)) {
        ++items;
        switch (it.kind) {
          case accel::TraceItem::Kind::compute:
            EXPECT_GT(it.instructions, 0u);
            break;
          case accel::TraceItem::Kind::load:
          case accel::TraceItem::Kind::store:
            EXPECT_EQ(it.size % 32, 0u);
            EXPECT_GT(it.size, 0u);
            EXPECT_EQ(it.addr % 32, 0u);
            break;
        }
    }
    EXPECT_GT(items, 10u);
}

TEST_P(WorkloadParamTest, ScalingPreservesPatternAndClass)
{
    WorkloadSpec base = Polybench::byName(GetParam());
    for (double f : {0.1, 0.5, 2.0}) {
        WorkloadSpec s = base.scaled(f);
        EXPECT_EQ(s.pattern, base.pattern);
        EXPECT_EQ(s.klass, base.klass);
        EXPECT_DOUBLE_EQ(s.opsPerByte, base.opsPerByte);
        EXPECT_NEAR(s.writeRatio(), base.writeRatio(), 0.03);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, WorkloadParamTest,
    ::testing::Values("adi", "chol", "doitg", "durbin", "dynpro",
                      "fdtdap", "floyd", "gemver", "jaco1D",
                      "jaco2D", "lu", "regd", "seidel", "trisolv",
                      "trmm"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace workload
} // namespace dramless
