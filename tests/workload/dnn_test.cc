/**
 * @file
 * Differential trace oracle for the DNN inference workload family.
 *
 * The oracle pins DnnTraceSource's access stream against closed-form
 * analytic counts derived independently here, with zero tolerance:
 * weights are K*C*R*S elements' worth of words read once per tile
 * pass, activations follow the sliding-window reuse model (rows
 * resident in the double buffer are never refetched within a pass,
 * every tile pass re-sweeps the input), and output stores are exact.
 * The touched-address footprint is pinned the same way. Rewind,
 * determinism and coalescing-interaction tests mirror
 * coalesce_test.cc: weights must coalesce into long bursts, strided
 * activation rows must never merge across row boundaries.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "workload/coalesce.hh"
#include "workload/dnn.hh"

namespace dramless
{
namespace workload
{
namespace
{

using accel::TraceItem;

// ------------------------- analytic oracle -------------------------

/** Bytes per modeled element — must match the generator's slot. */
constexpr std::uint64_t kSlot = 8;
constexpr std::uint32_t kUnit = 32;

std::uint64_t
wordsOf(std::uint64_t elems)
{
    return (elems * kSlot + kUnit - 1) / kUnit;
}

/** The contiguous-partition contract shared with the graph engine:
 *  remainder spread over the first agents. */
std::pair<std::uint32_t, std::uint32_t>
slice(std::uint32_t begin, std::uint32_t end, std::uint32_t agent,
      std::uint32_t agents)
{
    std::uint32_t total = end - begin;
    std::uint32_t per = total / agents;
    std::uint32_t extra = total % agents;
    std::uint32_t first = begin + agent * per + std::min(agent, extra);
    return {first, first + per + (agent < extra ? 1 : 0)};
}

/**
 * Input rows fetched during one full tile pass of layer @p d under
 * sliding-window reuse: each output row's clamped window fetches only
 * the rows not already resident from the previous window.
 */
std::uint64_t
fetchedRows(const DnnLayerDesc &d, std::uint32_t geom_h)
{
    if (d.type == DnnLayerType::fc)
        return geom_h;
    std::uint64_t rows = 0;
    std::uint32_t buffered = 0;
    for (std::uint32_t p = 0; p < d.outHeight(); ++p) {
        std::int64_t start = std::int64_t(p) * d.strideH - d.padH;
        std::uint32_t begin =
            std::uint32_t(std::max<std::int64_t>(0, start));
        std::uint32_t end = std::uint32_t(std::min<std::int64_t>(
            geom_h, start + d.kernelH));
        std::uint32_t fresh = std::max(begin, buffered);
        if (end > fresh)
            rows += end - fresh;
        buffered = std::max(buffered, end);
    }
    return rows;
}

/** Closed-form per-layer counts for one inference (batch 1). */
struct LayerCounts
{
    std::uint64_t weightWords = 0, actWords = 0, storeWords = 0;
    std::uint64_t instructions = 0;
    /** Distinct touched words (batch-independent). */
    std::uint64_t weightFootprint = 0, actFootprint = 0;
    std::uint64_t storeFootprint = 0;

    LayerCounts &
    operator+=(const LayerCounts &o)
    {
        weightWords += o.weightWords;
        actWords += o.actWords;
        storeWords += o.storeWords;
        instructions += o.instructions;
        weightFootprint += o.weightFootprint;
        actFootprint += o.actFootprint;
        storeFootprint += o.storeFootprint;
        return *this;
    }
};

LayerCounts
layerOracle(const DnnModel &m, std::uint32_t l,
            std::pair<std::uint32_t, std::uint32_t> owned,
            std::uint32_t tile_channels)
{
    const DnnLayerDesc &d = m.layers()[l];
    const DnnModel::ActGeom geom = m.inputGeom(l);
    LayerCounts c;
    std::uint64_t k = owned.second - owned.first;
    if (k == 0)
        return c;
    std::uint64_t tile = tile_channels == 0 ? k : tile_channels;
    std::uint64_t passes = (k + tile - 1) / tile;
    std::uint64_t row_words = wordsOf(geom.width);
    std::uint64_t rows = fetchedRows(d, geom.height);
    if (d.type != DnnLayerType::pool) {
        // K*C*R*S elements' worth of words, once per channel.
        c.weightWords = k * wordsOf(d.weightElemsPerChannel());
        c.weightFootprint = c.weightWords;
        // Conv/fc sweep every input channel once per tile pass.
        c.actWords = passes * geom.channels * rows * row_words;
        c.actFootprint = geom.channels * rows * row_words;
    } else {
        // Pool reduces only its own tile channels: one sweep total.
        c.actWords = k * rows * row_words;
        c.actFootprint = c.actWords;
    }
    std::uint64_t p = d.outHeight(), q = d.outWidth();
    c.storeWords = k * p * wordsOf(q);
    c.storeFootprint = c.storeWords;
    c.instructions = k * p * q * d.macsPerOutput();
    return c;
}

/** Oracle totals for one agent's whole trace (counts x batch). */
LayerCounts
traceOracle(const DnnModel &m, std::uint32_t chunks,
            std::uint32_t agent, std::uint32_t agents)
{
    LayerCounts total;
    for (std::uint32_t l = 0; l < m.numLayers(); ++l) {
        auto chunk0 =
            slice(0, m.layers()[l].outChannels, 0, chunks);
        auto owned = slice(chunk0.first, chunk0.second, agent, agents);
        total += layerOracle(m, l, owned, m.config().tileChannels);
    }
    std::uint32_t batch = m.config().batch;
    total.weightWords *= batch;
    total.actWords *= batch;
    total.storeWords *= batch;
    total.instructions *= batch;
    return total;
}

// --------------------------- trace drain ---------------------------

/** Word totals and footprints of a DNN trace, split by region:
 *  loads below the image base are weights, the rest activations. */
struct DnnSummary
{
    std::uint64_t weightWords = 0, actWords = 0, storeWords = 0;
    std::uint64_t instructions = 0, items = 0;
    std::set<std::uint64_t> weightAddrs, actAddrs, storeAddrs;
};

DnnSummary
drainDnn(accel::TraceSource &src, const DnnLayout &lay)
{
    DnnSummary s;
    TraceItem it;
    while (src.next(it)) {
        ++s.items;
        if (it.kind == TraceItem::Kind::compute) {
            s.instructions += it.instructions;
            continue;
        }
        for (std::uint32_t w = 0; w < it.burst; ++w) {
            std::uint64_t addr = it.addr + std::uint64_t(w) * it.size;
            if (it.kind == TraceItem::Kind::store) {
                ++s.storeWords;
                s.storeAddrs.insert(addr);
            } else if (addr < lay.imageBase) {
                ++s.weightWords;
                s.weightAddrs.insert(addr);
            } else {
                ++s.actWords;
                s.actAddrs.insert(addr);
            }
        }
    }
    return s;
}

std::vector<TraceItem>
drainItems(accel::TraceSource &src)
{
    std::vector<TraceItem> v;
    TraceItem it;
    while (src.next(it))
        v.push_back(it);
    return v;
}

bool
sameItems(const std::vector<TraceItem> &a,
          const std::vector<TraceItem> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].kind != b[i].kind || a[i].addr != b[i].addr ||
            a[i].size != b[i].size || a[i].burst != b[i].burst ||
            a[i].instructions != b[i].instructions) {
            return false;
        }
    }
    return true;
}

DnnLayout
layoutOf(const DnnWorkload &w)
{
    return DnnLayout::of(w.model(), kUnit, 0, 0);
}

/** Drain agent @p agent's trace and compare every count and every
 *  footprint against the closed-form oracle, zero tolerance. */
void
expectMatchesOracle(const DnnWorkload &w, std::uint32_t agent,
                    std::uint32_t agents, bool check_footprints)
{
    SCOPED_TRACE(testing::Message()
                 << w.spec().name << " agent " << agent << "/"
                 << agents);
    AgentTraceParams p;
    p.agentIndex = agent;
    p.numAgents = agents;
    auto src = w.makeAgentTrace(p);
    DnnLayout lay = layoutOf(w);
    DnnSummary got = drainDnn(*src, lay);
    LayerCounts want =
        traceOracle(w.model(), w.chunkCount(), agent, agents);
    EXPECT_EQ(got.weightWords, want.weightWords);
    EXPECT_EQ(got.actWords, want.actWords);
    EXPECT_EQ(got.storeWords, want.storeWords);
    EXPECT_EQ(got.instructions, want.instructions);
    if (!check_footprints)
        return;
    // Footprints only compose across layers when no two layers share
    // a buffer (single-layer and two-layer nets in these tests).
    EXPECT_EQ(got.weightAddrs.size(), want.weightFootprint);
    EXPECT_EQ(got.actAddrs.size(), want.actFootprint);
    EXPECT_EQ(got.storeAddrs.size(), want.storeFootprint);
}

DnnNetworkConfig
singleLayerNet(const char *name, DnnLayerDesc d,
               std::uint32_t batch = 1, std::uint32_t tile = 4)
{
    DnnNetworkConfig cfg;
    cfg.name = name;
    cfg.layers = {d};
    cfg.batch = batch;
    cfg.tileChannels = tile;
    return cfg;
}

// ----------------------------- shapes ------------------------------

TEST(DnnLayerTest, ShapesStridesAndPadding)
{
    DnnLayerDesc conv = convLayer(3, 16, 16, 8, 3, 2, 1);
    EXPECT_EQ(conv.outHeight(), 8u);
    EXPECT_EQ(conv.outWidth(), 8u);
    EXPECT_EQ(conv.weightElemsPerChannel(), 27u);
    EXPECT_EQ(conv.macsPerOutput(), 27u);

    DnnLayerDesc pool = poolLayer(6, 28, 28, 2, 2);
    EXPECT_EQ(pool.outHeight(), 14u);
    EXPECT_EQ(pool.outChannels, 6u);
    EXPECT_EQ(pool.weightElemsPerChannel(), 0u);
    EXPECT_EQ(pool.macsPerOutput(), 4u);

    DnnLayerDesc fc = fcLayer(400, 120);
    EXPECT_EQ(fc.outHeight(), 1u);
    EXPECT_EQ(fc.outWidth(), 1u);
    EXPECT_EQ(fc.weightElemsPerChannel(), 400u);
    EXPECT_EQ(fc.macsPerOutput(), 400u);
    EXPECT_EQ(fc.outputElems(), 120u);
}

TEST(DnnLayerTest, MismatchedChainsAreFatal)
{
    DnnNetworkConfig cfg;
    cfg.name = "bad";
    cfg.layers = {convLayer(1, 8, 8, 4, 3), poolLayer(5, 6, 6, 2, 2)};
    EXPECT_DEATH(DnnModel m(cfg), "does not match");

    DnnNetworkConfig fc_bad;
    fc_bad.name = "bad_fc";
    fc_bad.layers = {fcLayer(16, 8), fcLayer(9, 4)};
    EXPECT_DEATH(DnnModel m(fc_bad), "fc input");

    EXPECT_DEATH(dnnNetworkByName("nope"), "unknown DNN network");
}

// --------------------- differential trace oracle -------------------

TEST(DnnOracleTest, ConvWordCountsAndFootprintMatchClosedForm)
{
    // Stride 2 + pad 1 exercises window clamping at both edges;
    // batch 2 re-streams everything; tile 4 over 8 output channels
    // gives two passes over the 3-channel input.
    DnnWorkload w(singleLayerNet(
        "conv1", convLayer(3, 16, 16, 8, 3, 2, 1), 2, 4));
    for (std::uint32_t agents : {1u, 3u}) {
        for (std::uint32_t a = 0; a < agents; ++a)
            expectMatchesOracle(w, a, agents, true);
    }
}

TEST(DnnOracleTest, FcWordCountsAndFootprintMatchClosedForm)
{
    DnnWorkload w(singleLayerNet("fc1", fcLayer(100, 24), 1, 4));
    for (std::uint32_t agents : {1u, 2u}) {
        for (std::uint32_t a = 0; a < agents; ++a)
            expectMatchesOracle(w, a, agents, true);
    }
}

TEST(DnnOracleTest, PoolWordCountsAndFootprintMatchClosedForm)
{
    // Non-overlapping 2x2/2 and overlapping 3x3/2 windows: the
    // second has real sliding-window reuse (row 2 of each window is
    // row 0 of the next).
    DnnWorkload even(singleLayerNet(
        "pool_even", poolLayer(6, 8, 8, 2, 2), 1, 4));
    DnnWorkload overlap(singleLayerNet(
        "pool_overlap", poolLayer(4, 9, 9, 3, 2), 1, 4));
    for (const DnnWorkload *w : {&even, &overlap}) {
        for (std::uint32_t a = 0; a < 2; ++a)
            expectMatchesOracle(*w, a, 2, true);
    }
}

TEST(DnnOracleTest, NamedNetworksMatchClosedForm)
{
    // Full multi-layer networks: counts still match layer-by-layer
    // sums (footprints overlap across ping-pong buffers, skipped).
    for (const DnnNetworkConfig &cfg : dnnNetworks()) {
        DnnWorkload w(cfg);
        for (std::uint32_t a = 0; a < 3; ++a)
            expectMatchesOracle(w, a, 3, false);
    }
}

TEST(DnnOracleTest, AgentPartitionTilesTheStoreFootprint)
{
    // Per-agent store footprints union to the single-agent footprint
    // — exactly the graph engine's vertex partitioning, on output
    // channels. (Across layers the ping-pong buffers alias, so
    // pairwise disjointness only holds within one layer; the
    // single-layer net pins it.)
    const std::vector<DnnNetworkConfig> nets = {
        dnnNetworkByName("lenet"),
        singleLayerNet("conv1", convLayer(3, 16, 16, 8, 3, 2, 1)),
    };
    for (const DnnNetworkConfig &cfg : nets) {
        const bool multi_layer = cfg.layers.size() > 1;
        DnnWorkload w(cfg);
        SCOPED_TRACE(w.spec().name);
        DnnLayout lay = layoutOf(w);
        AgentTraceParams whole;
        auto whole_src = w.makeAgentTrace(whole);
        DnnSummary all = drainDnn(*whole_src, lay);

        std::set<std::uint64_t> unioned;
        std::uint64_t sizes = 0;
        const std::uint32_t agents = 3;
        for (std::uint32_t a = 0; a < agents; ++a) {
            AgentTraceParams p;
            p.agentIndex = a;
            p.numAgents = agents;
            auto src = w.makeAgentTrace(p);
            DnnSummary s = drainDnn(*src, lay);
            sizes += s.storeAddrs.size();
            unioned.insert(s.storeAddrs.begin(), s.storeAddrs.end());
        }
        EXPECT_EQ(unioned, all.storeAddrs);
        if (!multi_layer) {
            EXPECT_EQ(sizes, unioned.size()); // disjoint channels
        }
    }
}

TEST(DnnOracleTest, TilePassesRestreamActivationsNotWeights)
{
    // Same layer, one pass (tile 0) vs two passes (tile 2): each
    // extra pass re-sweeps the input once; weights, stores and MACs
    // are pass-count invariant.
    DnnLayerDesc d = convLayer(2, 8, 8, 4, 3);
    DnnWorkload one(singleLayerNet("t0", d, 1, 0));
    DnnWorkload two(singleLayerNet("t2", d, 1, 2));
    DnnLayout lay = layoutOf(one);
    AgentTraceParams p;
    auto s1 = drainDnn(*one.makeAgentTrace(p), lay);
    auto s2 = drainDnn(*two.makeAgentTrace(p), lay);
    EXPECT_EQ(s2.actWords, 2 * s1.actWords);
    EXPECT_EQ(s2.weightWords, s1.weightWords);
    EXPECT_EQ(s2.storeWords, s1.storeWords);
    EXPECT_EQ(s2.instructions, s1.instructions);
    EXPECT_EQ(s2.actAddrs, s1.actAddrs);
}

TEST(DnnOracleTest, BatchRestreamsWeightsWithSameFootprint)
{
    auto count = [](std::uint32_t batch) {
        DnnNetworkConfig cfg = dnnNetworkByName("mlp");
        cfg.batch = batch;
        DnnWorkload w(cfg);
        AgentTraceParams p;
        auto src = w.makeAgentTrace(p);
        return drainDnn(*src, layoutOf(w));
    };
    DnnSummary b1 = count(1), b3 = count(3);
    EXPECT_EQ(b3.weightWords, 3 * b1.weightWords);
    EXPECT_EQ(b3.actWords, 3 * b1.actWords);
    EXPECT_EQ(b3.storeWords, 3 * b1.storeWords);
    EXPECT_EQ(b3.instructions, 3 * b1.instructions);
    EXPECT_EQ(b3.weightAddrs, b1.weightAddrs);
    EXPECT_EQ(b3.actAddrs, b1.actAddrs);
    EXPECT_EQ(b3.storeAddrs, b1.storeAddrs);
}

TEST(DnnOracleTest, EmptyPartitionEmitsSentinel)
{
    // 2 output channels across 4 agents: agents 2 and 3 own nothing
    // in any layer and must still boot and retire their PE.
    DnnWorkload w(singleLayerNet("tiny", fcLayer(8, 2)));
    AgentTraceParams p;
    p.agentIndex = 3;
    p.numAgents = 4;
    auto items = drainItems(*w.makeAgentTrace(p));
    ASSERT_EQ(items.size(), 1u);
    EXPECT_EQ(items[0].kind, TraceItem::Kind::compute);
    EXPECT_EQ(items[0].instructions, 1u);
}

TEST(DnnOracleTest, StoresStayInsideTheReportedOutputRegion)
{
    DnnWorkload w(dnnNetworkByName("lenet"));
    AgentTraceParams p;
    p.agentIndex = 1;
    p.numAgents = 2;
    auto src = w.makeAgentTrace(p);
    auto [base, bytes] = src->outputRegion();
    DnnLayout lay = layoutOf(w);
    EXPECT_EQ(base, lay.outBase);
    EXPECT_EQ(bytes, lay.outBytes);
    DnnSummary s = drainDnn(*src, lay);
    ASSERT_FALSE(s.storeAddrs.empty());
    EXPECT_GE(*s.storeAddrs.begin(), base);
    EXPECT_LT(*s.storeAddrs.rbegin(), base + bytes);
}

TEST(DnnOracleTest, ChunkedTracesCoverOnlyChunkZeroChannels)
{
    DnnWorkload full(dnnNetworkByName("mlp"));
    auto chunk = std::dynamic_pointer_cast<const DnnWorkload>(
        full.chunked(2));
    ASSERT_NE(chunk, nullptr);
    EXPECT_EQ(chunk->chunkCount(), 2u);
    for (std::uint32_t a = 0; a < 2; ++a)
        expectMatchesOracle(*chunk, a, 2, false);
    // The trace's per-layer ranges are the chunk-0 slices.
    AgentTraceParams p;
    auto src = chunk->makeAgentTrace(p);
    auto *dnn = dynamic_cast<DnnTraceSource *>(src.get());
    ASSERT_NE(dnn, nullptr);
    const DnnModel &m = chunk->model();
    for (std::uint32_t l = 0; l < m.numLayers(); ++l) {
        EXPECT_EQ(dnn->channelRange(l),
                  slice(0, m.layers()[l].outChannels, 0, 2));
    }
}

TEST(DnnOracleTest, BadAgentSliceIsFatal)
{
    DnnWorkload w(singleLayerNet("tiny", fcLayer(8, 2)));
    AgentTraceParams p;
    p.agentIndex = 2;
    p.numAgents = 2;
    EXPECT_DEATH(w.makeAgentTrace(p), "bad agent slice");
    AgentTraceParams q;
    q.accessBytes = 48;
    EXPECT_DEATH(w.makeAgentTrace(q), "multiple of 32");
}

// ------------------------------ spec -------------------------------

TEST(DnnSpecTest, SpecNamesPatternsAndClasses)
{
    DnnWorkload lenet(dnnNetworkByName("lenet"));
    EXPECT_EQ(lenet.spec().name, "lenet_b1");
    EXPECT_EQ(lenet.spec().pattern, Pattern::strided);

    DnnWorkload mlp(dnnNetworkByName("mlp"));
    EXPECT_EQ(mlp.spec().pattern, Pattern::streaming);
    // Weight streaming dominates a batch-1 MLP.
    EXPECT_EQ(mlp.spec().klass, WorkloadClass::readIntensive);

    DnnNetworkConfig big = dnnNetworkByName("lenet");
    big.batch = 64;
    DnnWorkload batched(big);
    EXPECT_EQ(batched.spec().name, "lenet_b64");
    EXPECT_GT(batched.spec().opsPerByte, lenet.spec().opsPerByte);
}

TEST(DnnSpecTest, ScaledKeepsNameAndShrinksVolume)
{
    DnnWorkload w(dnnNetworkByName("ffn"));
    auto small = w.scaled(0.25);
    EXPECT_EQ(small->spec().name, w.spec().name);
    EXPECT_LT(small->spec().inputBytes, w.spec().inputBytes);
    // Extreme scaling clamps every dimension at 1 and still traces.
    auto tiny = w.scaled(1e-4);
    AgentTraceParams p;
    auto items = drainItems(*tiny->makeAgentTrace(p));
    EXPECT_FALSE(items.empty());
}

TEST(DnnSpecTest, ChunkingPaysTheRestagePenalty)
{
    // Chunks re-stage the full intermediate-activation footprint, so
    // the sum of chunk inputs exceeds the unchunked input.
    DnnWorkload w(dnnNetworkByName("lenet"));
    auto chunk = w.chunked(4);
    EXPECT_EQ(chunk->spec().name, w.spec().name);
    EXPECT_GT(4 * chunk->spec().inputBytes, w.spec().inputBytes);
    EXPECT_LT(chunk->spec().inputBytes, w.spec().inputBytes);
}

// ----------------------------- rewind ------------------------------

void
expectRewindDeterminism(AgentTraceSource &src, std::size_t k)
{
    std::vector<TraceItem> full = drainItems(src);
    ASSERT_GT(full.size(), k);
    src.rewind();
    TraceItem it;
    for (std::size_t i = 0; i < k; ++i)
        ASSERT_TRUE(src.next(it));
    src.rewind();
    std::vector<TraceItem> again = drainItems(src);
    EXPECT_TRUE(sameItems(full, again));
}

TEST(DnnRewindTest, MidStreamRewindIsDeterministic)
{
    for (const DnnNetworkConfig &cfg : dnnNetworks()) {
        SCOPED_TRACE(cfg.name);
        DnnWorkload w(cfg);
        AgentTraceParams p;
        p.numAgents = 2;
        auto src = w.makeAgentTrace(p);
        expectRewindDeterminism(*src, 23);
    }
}

TEST(DnnRewindTest, EqualConfigsGiveBitIdenticalStreams)
{
    DnnWorkload w(dnnNetworkByName("lenet"));
    AgentTraceParams p;
    p.agentIndex = 1;
    p.numAgents = 3;
    auto a = drainItems(*w.makeAgentTrace(p));
    auto b = drainItems(*w.makeAgentTrace(p));
    EXPECT_TRUE(sameItems(a, b));
}

// --------------------- coalescing interaction ----------------------

void
expectEquivalentUnderCoalescing(const DnnWorkload &w)
{
    SCOPED_TRACE(w.spec().name);
    AgentTraceParams p;
    auto plain = w.makeAgentTrace(p);
    CoalescingTraceSource coalesced(w.makeAgentTrace(p), 512);
    DnnLayout lay = layoutOf(w);
    DnnSummary a = drainDnn(*plain, lay);
    DnnSummary b = drainDnn(coalesced, lay);
    EXPECT_EQ(a.weightWords, b.weightWords);
    EXPECT_EQ(a.actWords, b.actWords);
    EXPECT_EQ(a.storeWords, b.storeWords);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.weightAddrs, b.weightAddrs);
    EXPECT_EQ(a.actAddrs, b.actAddrs);
    EXPECT_EQ(a.storeAddrs, b.storeAddrs);
    // The whole point: materially fewer items downstream.
    EXPECT_LT(b.items, a.items);
}

TEST(DnnCoalesceTest, ConvAndFcStreamsAreEquivalent)
{
    DnnWorkload conv(singleLayerNet(
        "conv1", convLayer(3, 16, 16, 8, 3, 2, 1), 1, 4));
    DnnWorkload fc(singleLayerNet("fc1", fcLayer(100, 24), 1, 4));
    expectEquivalentUnderCoalescing(conv);
    expectEquivalentUnderCoalescing(fc);
}

TEST(DnnCoalesceTest, WeightStreamsCoalesceIntoFullBursts)
{
    // fc(64, 8): each channel's weight block is exactly one 512B
    // aligned window (16 words), so every weight burst must arrive
    // fully fused — 8 items of burst 16, never word-by-word.
    DnnWorkload w(singleLayerNet("fcw", fcLayer(64, 8), 1, 4));
    AgentTraceParams p;
    CoalescingTraceSource coalesced(w.makeAgentTrace(p), 512);
    DnnLayout lay = layoutOf(w);
    std::uint64_t weight_items = 0;
    for (const TraceItem &it : drainItems(coalesced)) {
        if (it.kind != TraceItem::Kind::load ||
            it.addr >= lay.imageBase) {
            continue;
        }
        ++weight_items;
        EXPECT_EQ(it.burst, 16u);
        EXPECT_EQ(it.addr % 512, 0u);
    }
    EXPECT_EQ(weight_items, 8u);
}

TEST(DnnCoalesceTest, ActivationBurstsNeverCrossRowBoundaries)
{
    // The guard unit in the row pitch keeps consecutive rows
    // non-contiguous: every coalesced activation burst must stay
    // inside one (channel, row) slot.
    DnnWorkload conv(singleLayerNet(
        "convr", convLayer(2, 8, 8, 4, 3), 1, 2));
    DnnWorkload fc(singleLayerNet("fcr", fcLayer(100, 24), 1, 4));
    for (const DnnWorkload *w : {&conv, &fc}) {
        SCOPED_TRACE(w->spec().name);
        AgentTraceParams p;
        CoalescingTraceSource coalesced(w->makeAgentTrace(p), 512);
        DnnLayout lay = layoutOf(*w);
        const DnnModel::ActGeom geom = w->model().inputGeom(0);
        std::uint64_t pitch = lay.rowPitch(geom.width);
        std::uint64_t row_words = wordsOf(geom.width);
        std::uint64_t act_items = 0;
        for (const TraceItem &it : drainItems(coalesced)) {
            if (it.kind != TraceItem::Kind::load ||
                it.addr < lay.imageBase) {
                continue;
            }
            ++act_items;
            std::uint64_t first = (it.addr - lay.imageBase) / pitch;
            std::uint64_t last =
                (it.addr + it.bytes() - 1 - lay.imageBase) / pitch;
            EXPECT_EQ(first, last);
            EXPECT_LE(it.burst, row_words);
        }
        EXPECT_GT(act_items, 0u);
    }
}

} // anonymous namespace
} // namespace workload
} // namespace dramless
