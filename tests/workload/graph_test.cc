/**
 * @file
 * Unit tests of the graph-analytics workload engine: generator and
 * CSR invariants, BFS-tree correctness, kernel trace semantics,
 * per-agent partitioning, determinism, and the chunking model.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "workload/graph.hh"

namespace dramless
{
namespace workload
{
namespace
{

GraphConfig
smallGraph(std::uint64_t seed = 7)
{
    GraphConfig g;
    g.numVertices = 2048;
    g.edgeFactor = 8.0;
    g.seed = seed;
    return g;
}

/** Drain a trace into per-kind aggregates. */
struct TraceSummary
{
    std::vector<accel::TraceItem> items;
    std::uint64_t loads = 0, stores = 0, instructions = 0;
    std::set<std::uint64_t> loadAddrs, storeAddrs;
};

TraceSummary
drain(accel::TraceSource &src)
{
    TraceSummary s;
    accel::TraceItem it;
    while (src.next(it)) {
        s.items.push_back(it);
        switch (it.kind) {
          case accel::TraceItem::Kind::compute:
            s.instructions += it.instructions;
            break;
          case accel::TraceItem::Kind::load:
            ++s.loads;
            s.loadAddrs.insert(it.addr);
            break;
          case accel::TraceItem::Kind::store:
            ++s.stores;
            s.storeAddrs.insert(it.addr);
            break;
        }
    }
    return s;
}

bool
sameItems(const std::vector<accel::TraceItem> &a,
          const std::vector<accel::TraceItem> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].kind != b[i].kind || a[i].addr != b[i].addr ||
            a[i].size != b[i].size ||
            a[i].instructions != b[i].instructions) {
            return false;
        }
    }
    return true;
}

// ----------------------------- model -------------------------------

TEST(GraphModelTest, CsrInvariantsHold)
{
    GraphModel g(smallGraph());
    const auto &rp = g.rowPtr();
    ASSERT_EQ(rp.size(), g.numVertices() + 1);
    EXPECT_EQ(rp.front(), 0u);
    EXPECT_EQ(rp.back(), g.numEdges());
    for (std::size_t i = 0; i + 1 < rp.size(); ++i)
        EXPECT_LE(rp[i], rp[i + 1]);
    for (std::uint32_t v : g.colIdx())
        EXPECT_LT(v, g.numVertices());
    EXPECT_EQ(g.numEdges(),
              std::uint64_t(2048 * 8.0 + 0.5));
}

TEST(GraphModelTest, RmatIsSkewedUniformIsNot)
{
    GraphConfig cfg = smallGraph();
    GraphModel rmat(cfg);
    cfg.rmat = false;
    GraphModel uniform(cfg);
    // R-MAT concentrates edges on hub vertices; uniform does not.
    EXPECT_GT(rmat.maxOutDegree(), 4 * uniform.maxOutDegree());
}

TEST(GraphModelTest, BfsTreeIsConsistent)
{
    GraphModel g(smallGraph());
    const auto &depth = g.bfsDepth();
    const auto &parent = g.bfsParent();
    ASSERT_EQ(depth[0], 0u);
    ASSERT_EQ(parent[0], 0u);
    std::uint64_t reached = 0;
    std::uint32_t max_depth = 0;
    for (std::uint64_t v = 0; v < g.numVertices(); ++v) {
        if (depth[v] == UINT32_MAX) {
            EXPECT_EQ(parent[v], UINT32_MAX);
            continue;
        }
        ++reached;
        max_depth = std::max(max_depth, depth[v]);
        if (v == 0)
            continue;
        std::uint32_t p = parent[v];
        ASSERT_LT(p, g.numVertices());
        EXPECT_EQ(depth[p] + 1, depth[v]) << "vertex " << v;
        // The discovery edge (p -> v) must exist in the CSR.
        bool found = false;
        for (std::uint64_t e = g.rowPtr()[p];
             e < g.rowPtr()[p + 1] && !found; ++e) {
            found = g.colIdx()[e] == v;
        }
        EXPECT_TRUE(found) << "no edge " << p << "->" << v;
    }
    EXPECT_EQ(reached, g.bfsReached());
    EXPECT_EQ(max_depth, g.bfsMaxDepth());
    // An R-MAT graph at edge factor 8 is overwhelmingly connected
    // from the hub-heavy origin.
    EXPECT_GT(g.bfsReached(), g.numVertices() / 2);
}

TEST(GraphModelTest, SameSeedSameGraphDifferentSeedDifferent)
{
    GraphModel a(smallGraph(7)), b(smallGraph(7)),
        c(smallGraph(8));
    EXPECT_EQ(a.rowPtr(), b.rowPtr());
    EXPECT_EQ(a.colIdx(), b.colIdx());
    EXPECT_NE(a.colIdx(), c.colIdx());
}

// ----------------------------- layout ------------------------------

TEST(GraphLayoutTest, RegionsAreContiguousAndDisjoint)
{
    GraphModel g(smallGraph());
    for (GraphKernel k : {GraphKernel::bfs, GraphKernel::pagerank,
                          GraphKernel::spmv}) {
        GraphLayout l = GraphLayout::of(g, k, 32, 0, 0);
        EXPECT_EQ(l.rowPtrBase, 0u);
        EXPECT_EQ(l.colIdxBase, l.rowPtrBase + l.rowPtrBytes);
        EXPECT_EQ(l.valBase, l.colIdxBase + l.colIdxBytes);
        EXPECT_EQ(l.vtxBase, l.valBase + l.valBytes);
        EXPECT_EQ(l.inputBytes, l.vtxBase + l.vtxBytes);
        EXPECT_EQ(l.outBase, l.inputBytes);
        EXPECT_EQ(l.inputBytes % 32, 0u);
        EXPECT_EQ(l.outBytes % 32, 0u);
        if (k == GraphKernel::spmv)
            EXPECT_GT(l.valBytes, 0u);
        else
            EXPECT_EQ(l.valBytes, 0u);
    }
}

// --------------------------- workload ------------------------------

TEST(GraphWorkloadTest, SpecMatchesLayoutAndKernel)
{
    GraphWorkloadConfig cfg;
    cfg.kernel = GraphKernel::spmv;
    cfg.graph = smallGraph();
    GraphWorkload w(cfg);
    EXPECT_EQ(w.spec().name, "spmv_v2048_e8");
    EXPECT_EQ(w.spec().pattern, Pattern::randomAccess);
    GraphLayout l = GraphLayout::of(w.graph(), cfg.kernel, 32, 0, 0);
    EXPECT_EQ(w.spec().inputBytes, l.inputBytes);
    EXPECT_EQ(w.spec().outputBytes, l.outBytes);
}

TEST(GraphWorkloadTest, ScaledRegeneratesAndKeepsName)
{
    GraphWorkloadConfig cfg;
    cfg.graph = smallGraph();
    GraphWorkload w(cfg);
    auto half = w.scaled(0.5);
    EXPECT_EQ(half->spec().name, w.spec().name);
    EXPECT_LT(half->spec().inputBytes, w.spec().inputBytes);
    EXPECT_GT(half->spec().inputBytes, w.spec().inputBytes / 4);
}

TEST(GraphWorkloadTest, ChunkingKeepsTheVertexRegion)
{
    GraphWorkloadConfig cfg;
    cfg.graph = smallGraph();
    GraphWorkload w(cfg);
    auto chunk = w.chunked(8);
    // A chunk owns ~1/8 of the edges but must still stage the whole
    // vertex-data region — so it is strictly bigger than a naive
    // 1/8 volume split. This is the mechanism that penalizes
    // chunked (heterogeneous) execution on irregular workloads.
    GraphLayout l = GraphLayout::of(w.graph(), cfg.kernel, 32, 0, 0);
    EXPECT_GT(chunk->spec().inputBytes, w.spec().inputBytes / 8);
    EXPECT_GE(chunk->spec().inputBytes, l.vtxBytes);
    auto [begin, end] =
        static_cast<const GraphWorkload &>(*chunk).ownedRange();
    EXPECT_EQ(begin, 0u);
    EXPECT_NEAR(double(end), 2048.0 / 8, 1.0);
}

// ------------------------- trace semantics -------------------------

std::unique_ptr<AgentTraceSource>
makeTrace(GraphKernel kernel, std::uint32_t agent,
          std::uint32_t agents, std::uint32_t iterations = 1)
{
    GraphWorkloadConfig cfg;
    cfg.kernel = kernel;
    cfg.graph = smallGraph();
    cfg.iterations = iterations;
    GraphWorkload w(cfg);
    AgentTraceParams p;
    p.agentIndex = agent;
    p.numAgents = agents;
    return w.makeAgentTrace(p);
}

TEST(GraphTraceTest, BfsDiscoversEveryReachedVertexOnce)
{
    GraphWorkloadConfig cfg;
    cfg.graph = smallGraph();
    GraphWorkload w(cfg);
    GraphLayout l = GraphLayout::of(w.graph(), cfg.kernel, 32, 0, 0);
    // Across all agents, one discovery store per reached non-root
    // vertex: count store *words* hit at least once and compare to
    // the distinct depth words of reached vertices.
    std::set<std::uint64_t> store_words;
    std::uint64_t stores = 0;
    for (std::uint32_t a = 0; a < 4; ++a) {
        AgentTraceParams p;
        p.agentIndex = a;
        p.numAgents = 4;
        auto t = w.makeAgentTrace(p);
        TraceSummary s = drain(*t);
        stores += s.stores;
        store_words.insert(s.storeAddrs.begin(),
                           s.storeAddrs.end());
        for (auto addr : s.storeAddrs) {
            EXPECT_GE(addr, l.outBase);
            EXPECT_LT(addr, l.outBase + l.outBytes);
        }
    }
    EXPECT_EQ(stores, w.graph().bfsReached() - 1);
    std::set<std::uint64_t> expected_words;
    for (std::uint64_t v = 0; v < w.graph().numVertices(); ++v) {
        if (v != 0 && w.graph().bfsDepth()[v] != UINT32_MAX)
            expected_words.insert(l.outBase + v * 8 / 32 * 32);
    }
    EXPECT_EQ(store_words, expected_words);
}

TEST(GraphTraceTest, PagerankEmitsRmwPerOwnedVertex)
{
    auto t = makeTrace(GraphKernel::pagerank, 0, 1);
    GraphWorkloadConfig cfg;
    cfg.kernel = GraphKernel::pagerank;
    cfg.graph = smallGraph();
    GraphWorkload w(cfg);
    GraphLayout l = GraphLayout::of(w.graph(), cfg.kernel, 32, 0, 0);
    TraceSummary s = drain(*t);
    // One rank read-modify-write per vertex: stores == vertices, and
    // every rank word is both loaded and stored.
    EXPECT_EQ(s.stores, w.graph().numVertices());
    for (auto addr : s.storeAddrs) {
        EXPECT_GE(addr, l.outBase);
        EXPECT_TRUE(s.loadAddrs.count(addr));
    }
}

TEST(GraphTraceTest, PagerankIterationsMultiplyTheTrace)
{
    auto one = makeTrace(GraphKernel::pagerank, 0, 2, 1);
    auto two = makeTrace(GraphKernel::pagerank, 0, 2, 2);
    TraceSummary a = drain(*one), b = drain(*two);
    EXPECT_EQ(b.items.size(), 2 * a.items.size());
    EXPECT_EQ(b.instructions, 2 * a.instructions);
}

TEST(GraphTraceTest, SpmvTouchesValuesAndPacksOutput)
{
    GraphWorkloadConfig cfg;
    cfg.kernel = GraphKernel::spmv;
    cfg.graph = smallGraph();
    GraphWorkload w(cfg);
    GraphLayout l = GraphLayout::of(w.graph(), cfg.kernel, 32, 0, 0);
    AgentTraceParams p;
    auto t = w.makeAgentTrace(p);
    TraceSummary s = drain(*t);
    bool touched_values = false;
    for (auto addr : s.loadAddrs) {
        touched_values |=
            addr >= l.valBase && addr < l.valBase + l.valBytes;
    }
    EXPECT_TRUE(touched_values);
    // Four 8 B results pack per 32 B store word.
    EXPECT_EQ(s.stores, (w.graph().numVertices() + 3) / 4);
}

TEST(GraphTraceTest, GathersStayInsideTheVertexRegion)
{
    GraphWorkloadConfig cfg;
    cfg.kernel = GraphKernel::pagerank;
    cfg.graph = smallGraph();
    GraphWorkload w(cfg);
    GraphLayout l = GraphLayout::of(w.graph(), cfg.kernel, 32, 0, 0);
    AgentTraceParams p;
    auto t = w.makeAgentTrace(p);
    accel::TraceItem it;
    while (t->next(it)) {
        if (it.kind != accel::TraceItem::Kind::load)
            continue;
        EXPECT_LT(it.addr, l.outBase + l.outBytes);
        EXPECT_EQ(it.addr % 32, 0u);
        EXPECT_EQ(it.size, 32u);
    }
}

TEST(GraphTraceTest, AgentsPartitionVertices)
{
    GraphWorkloadConfig cfg;
    cfg.graph = smallGraph();
    GraphWorkload w(cfg);
    constexpr std::uint32_t agents = 7; // does not divide 2048
    std::uint64_t covered = 0, prev_end = 0;
    for (std::uint32_t a = 0; a < agents; ++a) {
        AgentTraceParams p;
        p.agentIndex = a;
        p.numAgents = agents;
        auto t = w.makeAgentTrace(p);
        auto [b, e] =
            static_cast<GraphTraceSource &>(*t).vertexRange();
        EXPECT_EQ(b, prev_end);
        prev_end = e;
        covered += e - b;
    }
    EXPECT_EQ(prev_end, w.graph().numVertices());
    EXPECT_EQ(covered, w.graph().numVertices());
}

// --------------------------- determinism ---------------------------

TEST(GraphTraceTest, SameConfigGivesBitIdenticalTraces)
{
    auto a = makeTrace(GraphKernel::bfs, 1, 4);
    auto b = makeTrace(GraphKernel::bfs, 1, 4);
    TraceSummary sa = drain(*a), sb = drain(*b);
    EXPECT_TRUE(sameItems(sa.items, sb.items));
    ASSERT_GT(sa.items.size(), 1000u);
}

TEST(GraphTraceTest, RewindReproducesTheTrace)
{
    for (GraphKernel k : {GraphKernel::bfs, GraphKernel::pagerank,
                          GraphKernel::spmv}) {
        auto t = makeTrace(k, 0, 3);
        TraceSummary a = drain(*t);
        t->rewind();
        TraceSummary b = drain(*t);
        EXPECT_TRUE(sameItems(a.items, b.items))
            << graphKernelName(k);
    }
}

TEST(GraphTraceDeathTest, RejectsBadParams)
{
    GraphWorkloadConfig cfg;
    cfg.graph = smallGraph();
    GraphWorkload w(cfg);
    AgentTraceParams p;
    p.agentIndex = 4;
    p.numAgents = 2;
    EXPECT_DEATH(w.makeAgentTrace(p), "bad agent slice");
    EXPECT_DEATH(w.scaled(0.0), "positive");
}

} // namespace
} // namespace workload
} // namespace dramless
