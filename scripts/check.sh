#!/usr/bin/env sh
# Tier-1 gate: configure, build, and run the full test suite exactly
# the way CI does. Usage:
#
#   scripts/check.sh [build-dir]
#
# Environment:
#   DRAMLESS_JOBS    worker threads for parallel sweeps inside the
#                    tests/benches (default: 2, so the thread pool is
#                    exercised even on small CI machines)
#   DRAMLESS_WERROR  set to ON to build with -Werror
#   CMAKE_GENERATOR  honored as usual (e.g. Ninja)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

: "${DRAMLESS_JOBS:=2}"
export DRAMLESS_JOBS

cmake -B "$build_dir" -S "$repo_root" \
    -DDRAMLESS_WERROR="${DRAMLESS_WERROR:-OFF}"
cmake --build "$build_dir" -j "$jobs"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

# Stage 2: ASan+UBSan profile. The runner determinism suite is the
# highest-value target under sanitizers: it exercises the thread
# pool, the trace merge path, and every system model end to end. The
# reliability suite rides along because its retry/remap paths splice
# request state and re-issue buffers — exactly where lifetime bugs
# would hide.
san_dir="$build_dir-asan"
cmake -B "$san_dir" -S "$repo_root" \
    -DDRAMLESS_SANITIZE=ON \
    -DDRAMLESS_WERROR="${DRAMLESS_WERROR:-OFF}"
cmake --build "$san_dir" -j "$jobs" --target runner_tests \
    reliability_tests
"$san_dir/tests/runner/runner_tests" \
    --gtest_filter='DeterminismTest.*'
"$san_dir/tests/reliability/reliability_tests"

# Stage 3: kernel performance gate. Re-runs the wall-clock
# micro_kernel quick sweep serially (no sanitizers, default
# RelWithDebInfo build from stage 1) and fails on a >20% events/sec
# regression against the committed BENCH_4.json baseline. Widen the
# tolerance on noisy shared machines via DRAMLESS_PERF_TOLERANCE.
ctest --test-dir "$build_dir" --output-on-failure -L perf

echo "check.sh: all tests passed (DRAMLESS_JOBS=$DRAMLESS_JOBS)"
