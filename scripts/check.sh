#!/usr/bin/env sh
# Tier-1 gate: configure, build, and run the full test suite exactly
# the way CI does. Usage:
#
#   scripts/check.sh [build-dir]
#
# Environment:
#   DRAMLESS_JOBS    worker threads for parallel sweeps inside the
#                    tests/benches (default: 2, so the thread pool is
#                    exercised even on small CI machines)
#   DRAMLESS_WERROR  set to ON to build with -Werror
#   CMAKE_GENERATOR  honored as usual (e.g. Ninja)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

: "${DRAMLESS_JOBS:=2}"
export DRAMLESS_JOBS

cmake -B "$build_dir" -S "$repo_root" \
    -DDRAMLESS_WERROR="${DRAMLESS_WERROR:-OFF}"
cmake --build "$build_dir" -j "$jobs"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

echo "check.sh: all tests passed (DRAMLESS_JOBS=$DRAMLESS_JOBS)"
