#!/usr/bin/env sh
# Tier-1 gate: configure, build, and run the full test suite exactly
# the way CI does. Usage:
#
#   scripts/check.sh [build-dir]
#
# Environment:
#   DRAMLESS_JOBS    worker threads for parallel sweeps inside the
#                    tests/benches (default: 2, so the thread pool is
#                    exercised even on small CI machines)
#   DRAMLESS_WERROR  set to ON to build with -Werror
#   CMAKE_GENERATOR  honored as usual (e.g. Ninja)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

: "${DRAMLESS_JOBS:=2}"
export DRAMLESS_JOBS

cmake -B "$build_dir" -S "$repo_root" \
    -DDRAMLESS_WERROR="${DRAMLESS_WERROR:-OFF}"
cmake --build "$build_dir" -j "$jobs"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

# Stage 2: ASan+UBSan profile. The runner determinism suite is the
# highest-value target under sanitizers: it exercises the thread
# pool, the trace merge path, and every system model end to end. The
# reliability suite rides along because its retry/remap paths splice
# request state and re-issue buffers — exactly where lifetime bugs
# would hide. The integrity fuzz suite drives randomized traffic
# through wear leveling + fault injection + spare remap against a
# shadow model, so it runs under sanitizers too. The serving suite
# joins them because its queueing event loop indexes schedules and
# per-node wait lists by hand (and its histogram path is where the
# NaN-indexing UB lived). The pdes suite joins under ASan because
# the sharded kernel's mailbox envelopes and the co-sim fleet's
# cross-cluster closures are heap-lifetime-sensitive by construction.
# The dnn suite (ctest label dnn) rides along because its trace
# source stages deques of items per tile pass and the differential
# oracle walks every emitted word — the dense-iteration shape where
# off-by-one indexing would hide.
san_dir="$build_dir-asan"
cmake -B "$san_dir" -S "$repo_root" \
    -DDRAMLESS_SANITIZE=ON \
    -DDRAMLESS_WERROR="${DRAMLESS_WERROR:-OFF}"
cmake --build "$san_dir" -j "$jobs" --target runner_tests \
    reliability_tests integrity_tests serve_tests pdes_tests \
    dnn_tests
"$san_dir/tests/runner/runner_tests" \
    --gtest_filter='DeterminismTest.*'
"$san_dir/tests/reliability/reliability_tests"
"$san_dir/tests/systems/integrity_tests"
"$san_dir/tests/serve/serve_tests"
"$san_dir/tests/pdes/pdes_tests"
"$san_dir/tests/workload/dnn_tests"

# Stage 2b: ThreadSanitizer profile. TSan sees what ASan cannot:
# data races between the sharded event kernel's worker threads
# (window barrier, mailbox locking, cluster handoff) and inside the
# SweepRunner job pool. Death tests fork, which TSan dislikes, so
# the kernel suite runs without them; the protocol violations they
# cover are single-threaded panics already exercised under ASan.
tsan_dir="$build_dir-tsan"
cmake -B "$tsan_dir" -S "$repo_root" \
    -DDRAMLESS_SANITIZE=thread \
    -DDRAMLESS_WERROR="${DRAMLESS_WERROR:-OFF}"
cmake --build "$tsan_dir" -j "$jobs" --target pdes_tests \
    runner_tests
"$tsan_dir/tests/pdes/pdes_tests" \
    --gtest_filter='-*Dies:*Refused'
"$tsan_dir/tests/runner/runner_tests" \
    --gtest_filter='SweepRunnerTest.*:CoreBudgetTest.*'

# Stage 3: kernel performance gate. Re-runs the wall-clock
# micro_kernel quick sweep serially (no sanitizers, default
# RelWithDebInfo build from stage 1) and fails on a >20% events/sec
# regression (or sweep heap-event blow-up, or a PDES shard-scaling
# efficiency collapse on >=4-core hosts) against the committed
# BENCH_9.json baseline. Widen the tolerance on noisy shared
# machines via DRAMLESS_PERF_TOLERANCE.
ctest --test-dir "$build_dir" --output-on-failure -L perf

# Stage 4: workload coverage gate. The workload generators are the
# ground truth every system measurement rests on, so their test suite
# must keep src/workload line coverage at or above the floor. Builds
# an instrumented profile (DRAMLESS_COVERAGE=ON), runs the workload
# suite, and aggregates gcov line counts over src/workload.
cov_floor=${DRAMLESS_COVERAGE_FLOOR:-85}
cov_dir="$build_dir-cov"
cmake -B "$cov_dir" -S "$repo_root" \
    -DDRAMLESS_COVERAGE=ON \
    -DDRAMLESS_WERROR="${DRAMLESS_WERROR:-OFF}"
cmake --build "$cov_dir" -j "$jobs" --target workload_tests \
    dnn_tests
"$cov_dir/tests/workload/workload_tests"
"$cov_dir/tests/workload/dnn_tests"
# Line-level union merge across translation units: each .gcda (the
# library's own objects plus the test objects, which hold the header
# inline coverage) is gcov'ed separately, and a source line counts as
# covered if ANY unit executed it. The per-file percentages gcov
# prints cannot be merged; the per-line records can.
cov_pct=$(cd "$cov_dir" && {
        for gcda in \
            src/workload/CMakeFiles/dramless_workload.dir/*.gcda \
            tests/workload/CMakeFiles/workload_tests.dir/*.gcda \
            tests/workload/CMakeFiles/dnn_tests.dir/*.gcda
        do
            [ -f "$gcda" ] || continue
            gcov -p "$gcda" > /dev/null 2>&1 || true
            cat ./*src*workload*.gcov 2>/dev/null
            rm -f ./*.gcov
        done
    } | awk -F: '
        $3 == "Source" { file = $4; next }
        NF >= 2 && file ~ /\/src\/workload\// {
            count = $1; gsub(/ /, "", count);
            if (count == "-") next;          # not executable
            key = file ":" $2;
            lines[key] = 1;
            if (count != "#####" && count != "=====")
                hit[key] = 1;
        }
        END {
            total = 0; covered = 0;
            for (k in lines) {
                ++total;
                if (k in hit) ++covered;
            }
            if (total > 0) printf "%.1f", covered / total * 100;
            else print "0";
        }')
echo "check.sh: src/workload line coverage ${cov_pct}%" \
     "(floor ${cov_floor}%)"
if [ "$(awk -v p="$cov_pct" -v f="$cov_floor" \
        'BEGIN { print (p + 0 < f + 0) ? 1 : 0 }')" = 1 ]; then
    echo "check.sh: FAIL — src/workload coverage ${cov_pct}% is" \
         "below the ${cov_floor}% floor" >&2
    exit 1
fi

echo "check.sh: all tests passed (DRAMLESS_JOBS=$DRAMLESS_JOBS)"
