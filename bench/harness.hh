/**
 * @file
 * Shared helpers for the figure/table regeneration binaries: parallel
 * run matrices over (system, workload) via runner::SweepRunner,
 * aligned table printing, and the environment knobs
 * (DRAMLESS_SCALE, DRAMLESS_JOBS, DRAMLESS_OUT_JSON/CSV).
 */

#ifndef DRAMLESS_BENCH_HARNESS_HH
#define DRAMLESS_BENCH_HARNESS_HH

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/dramless.hh"

namespace dramless
{
namespace bench
{

/** Workload-volume scale; override with DRAMLESS_SCALE=0.5 etc. */
inline double
scaleFromEnv(double fallback = 0.25)
{
    const char *env = std::getenv("DRAMLESS_SCALE");
    if (env == nullptr)
        return fallback;
    double v = std::atof(env);
    return v > 0.0 ? v : fallback;
}

/** Default options for the reproduction runs. */
inline systems::SystemOptions
defaultOptions()
{
    setQuiet(true);
    systems::SystemOptions opts;
    opts.workloadScale = scaleFromEnv();
    return opts;
}

/** Run one (system, workload) pair on a fresh instance. */
inline systems::RunResult
runOne(systems::SystemKind kind, const workload::WorkloadSpec &spec,
       const systems::SystemOptions &opts)
{
    runner::JobTraceScope traceScope(
        systems::SystemFactory::label(kind), spec.name);
    auto sys = systems::SystemFactory::create(kind, opts);
    return sys->run(spec);
}

/** Results keyed by (system label, workload name). */
using ResultMatrix = runner::ResultMatrix;

/**
 * Run @p jobs on the shared thread pool (DRAMLESS_JOBS workers, one
 * per hardware thread when unset) and return results in job order.
 */
inline std::vector<systems::RunResult>
runJobs(const std::vector<runner::SweepJob> &jobs,
        bool progress = true)
{
    runner::SweepRunner pool(runner::jobsFromEnv());
    return pool.run(jobs,
                    progress ? runner::stderrProgress() : nullptr);
}

/** Run @p kinds x the full Polybench suite (in parallel). */
inline ResultMatrix
runMatrix(const std::vector<systems::SystemKind> &kinds,
          const systems::SystemOptions &opts,
          bool progress = true)
{
    auto jobs = runner::makeMatrixJobs(
        kinds, workload::Polybench::all(), opts);
    ResultMatrix out;
    std::vector<systems::RunResult> results =
        runJobs(jobs, progress);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        out[jobs[i].system][jobs[i].workload] = results[i];
    return out;
}

/**
 * A ResultSink named after the binary, stamped with the run scale.
 * Finish with sink.exportFromEnv() to honor DRAMLESS_OUT_JSON/CSV.
 */
inline runner::ResultSink
makeSink(const std::string &name, const std::string &description,
         const systems::SystemOptions &opts)
{
    runner::ResultSink sink(name, description);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", opts.workloadScale);
    sink.label("workload_scale", buf);
    return sink;
}

/** Print one row of right-aligned numeric cells. */
inline void
printRow(const std::string &head,
         const std::vector<double> &cells, const char *fmt = "%9.2f")
{
    std::printf("%-22s", head.c_str());
    for (double v : cells)
        std::printf(fmt, v);
    std::printf("\n");
}

/** Print a header row of column labels. */
inline void
printHeader(const std::string &head,
            const std::vector<std::string> &cols, int width = 9)
{
    std::printf("%-22s", head.c_str());
    for (const auto &c : cols)
        std::printf("%*s", width, c.c_str());
    std::printf("\n");
}

/** Column labels: the fifteen workloads. */
inline std::vector<std::string>
workloadColumns()
{
    std::vector<std::string> cols;
    for (const auto &spec : workload::Polybench::all())
        cols.push_back(spec.name);
    return cols;
}

/** Geometric mean over all workloads of @p f(result). */
template <typename F>
double
geomeanOver(const std::map<std::string, systems::RunResult> &row,
            F &&f)
{
    std::vector<double> vals;
    for (const auto &[_, r] : row)
        vals.push_back(f(r));
    return stats::geomean(vals);
}

/** Render a time series as a compact two-row text sparkline. */
inline void
printSeries(const std::string &label, const stats::TimeSeries &ts,
            std::size_t points, double scale_to = 0.0)
{
    auto pts = ts.downsample(points);
    double peak = 1e-12;
    for (const auto &p : pts)
        peak = std::max(peak, p.value);
    if (scale_to > 0.0)
        peak = scale_to;
    static const char *glyphs[] = {" ", ".", ":", "-", "=", "+",
                                   "*", "#", "%", "@"};
    std::printf("%-22s|", label.c_str());
    for (const auto &p : pts) {
        int level = int(p.value / peak * 9.0 + 0.5);
        level = std::max(0, std::min(9, level));
        std::printf("%s", glyphs[level]);
    }
    std::printf("| peak %.2f\n", peak);
}

} // namespace bench
} // namespace dramless

#endif // DRAMLESS_BENCH_HARNESS_HH
