/**
 * @file
 * Shared helpers for the figure/table regeneration binaries: run
 * matrices over (system, workload), aligned table printing, and the
 * DRAMLESS_SCALE environment knob.
 */

#ifndef DRAMLESS_BENCH_HARNESS_HH
#define DRAMLESS_BENCH_HARNESS_HH

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/dramless.hh"

namespace dramless
{
namespace bench
{

/** Workload-volume scale; override with DRAMLESS_SCALE=0.5 etc. */
inline double
scaleFromEnv(double fallback = 0.25)
{
    const char *env = std::getenv("DRAMLESS_SCALE");
    if (env == nullptr)
        return fallback;
    double v = std::atof(env);
    return v > 0.0 ? v : fallback;
}

/** Default options for the reproduction runs. */
inline systems::SystemOptions
defaultOptions()
{
    setQuiet(true);
    systems::SystemOptions opts;
    opts.workloadScale = scaleFromEnv();
    return opts;
}

/** Run one (system, workload) pair on a fresh instance. */
inline systems::RunResult
runOne(systems::SystemKind kind, const workload::WorkloadSpec &spec,
       const systems::SystemOptions &opts)
{
    auto sys = systems::SystemFactory::create(kind, opts);
    return sys->run(spec);
}

/** Results keyed by (system label, workload name). */
using ResultMatrix =
    std::map<std::string, std::map<std::string, systems::RunResult>>;

/** Run @p kinds x the full Polybench suite. */
inline ResultMatrix
runMatrix(const std::vector<systems::SystemKind> &kinds,
          const systems::SystemOptions &opts,
          bool progress = true)
{
    ResultMatrix out;
    for (systems::SystemKind kind : kinds) {
        const char *label = systems::SystemFactory::label(kind);
        for (const auto &spec : workload::Polybench::all()) {
            if (progress) {
                std::fprintf(stderr, "  running %-20s %-8s\r", label,
                             spec.name.c_str());
                std::fflush(stderr);
            }
            out[label][spec.name] = runOne(kind, spec, opts);
        }
    }
    if (progress)
        std::fprintf(stderr, "%-48s\r", "");
    return out;
}

/** Print one row of right-aligned numeric cells. */
inline void
printRow(const std::string &head,
         const std::vector<double> &cells, const char *fmt = "%9.2f")
{
    std::printf("%-22s", head.c_str());
    for (double v : cells)
        std::printf(fmt, v);
    std::printf("\n");
}

/** Print a header row of column labels. */
inline void
printHeader(const std::string &head,
            const std::vector<std::string> &cols, int width = 9)
{
    std::printf("%-22s", head.c_str());
    for (const auto &c : cols)
        std::printf("%*s", width, c.c_str());
    std::printf("\n");
}

/** Column labels: the fifteen workloads. */
inline std::vector<std::string>
workloadColumns()
{
    std::vector<std::string> cols;
    for (const auto &spec : workload::Polybench::all())
        cols.push_back(spec.name);
    return cols;
}

/** Geometric mean over all workloads of @p f(result). */
template <typename F>
double
geomeanOver(const std::map<std::string, systems::RunResult> &row,
            F &&f)
{
    std::vector<double> vals;
    for (const auto &[_, r] : row)
        vals.push_back(f(r));
    return stats::geomean(vals);
}

/** Render a time series as a compact two-row text sparkline. */
inline void
printSeries(const std::string &label, const stats::TimeSeries &ts,
            std::size_t points, double scale_to = 0.0)
{
    auto pts = ts.downsample(points);
    double peak = 1e-12;
    for (const auto &p : pts)
        peak = std::max(peak, p.value);
    if (scale_to > 0.0)
        peak = scale_to;
    static const char *glyphs[] = {" ", ".", ":", "-", "=", "+",
                                   "*", "#", "%", "@"};
    std::printf("%-22s|", label.c_str());
    for (const auto &p : pts) {
        int level = int(p.value / peak * 9.0 + 0.5);
        level = std::max(0, std::min(9, level));
        std::printf("%s", glyphs[level]);
    }
    std::printf("| peak %.2f\n", peak);
}

} // namespace bench
} // namespace dramless

#endif // DRAMLESS_BENCH_HARNESS_HH
