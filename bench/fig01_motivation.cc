/**
 * @file
 * Figure 1: performance degradation and energy overhead of a
 * conventional accelerated system (accelerator + SSD through PCIe)
 * against an idealized environment with all data resident in the
 * accelerator. The paper reports up to 74% performance degradation
 * and ~9x the energy, averaged over data-intensive workloads.
 */

#include <cstdio>

#include "harness.hh"

using namespace dramless;

int
main()
{
    auto opts = bench::defaultOptions();
    std::printf("Figure 1: conventional accelerated system vs "
                "ideal (scale %.2f)\n\n",
                opts.workloadScale);
    std::printf("%-8s %18s %18s\n", "kernel", "norm. performance",
                "norm. energy");
    std::printf("%.*s\n", 46,
                "------------------------------------------------");

    bench::ResultMatrix m = bench::runMatrix(
        {systems::SystemKind::ideal, systems::SystemKind::hetero},
        opts);
    auto sink = bench::makeSink(
        "fig01_motivation",
        "Figure 1: conventional accelerated system vs ideal", opts);
    sink.add(m);

    std::vector<double> perf, energy;
    for (const auto &spec : workload::Polybench::all()) {
        const auto &ideal = m.at("Ideal").at(spec.name);
        const auto &hetero = m.at("Hetero").at(spec.name);
        double p = hetero.bandwidthMBps / ideal.bandwidthMBps;
        double e = hetero.energy.total() / ideal.energy.total();
        perf.push_back(p);
        energy.push_back(e);
        std::printf("%-8s %17.2f%% %17.1fx\n", spec.name.c_str(),
                    p * 100.0, e);
    }
    std::printf("%.*s\n", 46,
                "------------------------------------------------");
    std::printf("%-8s %17.2f%% %17.1fx\n", "geomean",
                stats::geomean(perf) * 100.0,
                stats::geomean(energy));
    std::printf("\npaper: performance degrades by as much as 74%% "
                "(i.e. to ~26%% of ideal);\n"
                "energy is ~9x the ideal system, on average.\n");

    sink.metric("gm_perf_vs_ideal", stats::geomean(perf));
    sink.metric("gm_energy_vs_ideal", stats::geomean(energy));
    sink.exportFromEnv();
    return 0;
}
