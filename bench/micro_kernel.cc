/**
 * @file
 * Wall-clock microbenchmark of the simulation kernel: events/sec and
 * peak RSS. This is the repo's perf-trajectory anchor — the committed
 * BENCH_9.json baseline is compared against by `--check-against`
 * (scripts/check.sh stage 3, ctest label `perf`). Besides the
 * throughput gates, the sweep's deterministic heap-event count is
 * gated upward so a coalescing regression (event blow-up) fails even
 * when raw wall clock stays inside tolerance, and the sharded
 * kernel's 4-worker speedup is gated against collapse (on machines
 * with the cores to measure it).
 *
 * Four workloads:
 *   steady  raw kernel throughput: a fixed population of persistent
 *           events self-rescheduling at pseudo-random deltas — the
 *           shape of every device model's scheduler/step event.
 *   churn   schedule/deschedule/reschedule mix over a large event
 *           population: stresses mid-heap removal, which the lazy
 *           pre-PR kernel deferred and the indexed heap does eagerly.
 *   sweep   the quick (system x workload) matrix of the golden tests,
 *           run end to end: kernel throughput with real device models
 *           on top (the ratio that matters for Polybench sweeps).
 *   pdes    the co-simulated 4-node serving fleet on the sharded
 *           conservative-PDES kernel at 1/2/4 workers: the
 *           events/sec-per-shard scaling curve.
 *
 * Every workload reports the best of several repetitions so one
 * scheduler hiccup cannot fake a regression. Usage:
 *
 *   micro_kernel [--quick] [--check-against BENCH.json]
 *
 * Environment: DRAMLESS_OUT_JSON (export path),
 * DRAMLESS_PERF_TOLERANCE (allowed fractional regression, def. 0.20).
 */

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <thread>

#include "harness.hh"
#include "serve/arrival.hh"
#include "serve/cosim.hh"
#include "sim/event_queue.hh"
#include "sim/json.hh"
#include "sim/random.hh"
#include "workload/polybench.hh"
#include "workload/workload_model.hh"

namespace dramless
{
namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** A persistent event that reschedules itself a fixed number of times
 *  — the steady-state shape of scheduler/step/drain device events. */
class SelfRescheduler : public Event
{
  public:
    SelfRescheduler(EventQueue &eq, Random *rng,
                    std::uint64_t *remaining)
        : eq_(eq), rng_(rng), remaining_(remaining)
    {}

    void
    process() override
    {
        if (*remaining_ == 0)
            return;
        --*remaining_;
        eq_.schedule(this, eq_.curTick() + 1 + rng_->below(97));
    }

    std::string name() const override { return "steady"; }

  private:
    EventQueue &eq_;
    Random *rng_;
    std::uint64_t *remaining_;
};

/** steady: @p total events through @p population self-reschedulers.
 *  @return events per second. */
double
runSteady(std::uint64_t total, std::uint32_t population)
{
    EventQueue eq;
    Random rng(42);
    std::uint64_t remaining = total;
    std::vector<std::unique_ptr<SelfRescheduler>> events;
    events.reserve(population);
    for (std::uint32_t i = 0; i < population; ++i) {
        events.push_back(std::make_unique<SelfRescheduler>(
            eq, &rng, &remaining));
        eq.schedule(events.back().get(), 1 + rng.below(97));
    }
    auto start = Clock::now();
    eq.run();
    double secs = secondsSince(start);
    return double(eq.numProcessed()) / secs;
}

/** churn: random schedule/deschedule/reschedule/step ops.
 *  @return kernel operations per second. */
double
runChurn(std::uint64_t total_ops, std::uint32_t population)
{
    EventQueue eq;
    Random rng(7);
    struct Noop : Event
    {
        void process() override {}
        std::string name() const override { return "churn"; }
    };
    std::vector<std::unique_ptr<Noop>> events;
    for (std::uint32_t i = 0; i < population; ++i)
        events.push_back(std::make_unique<Noop>());

    auto start = Clock::now();
    for (std::uint64_t op = 0; op < total_ops; ++op) {
        Event *ev = events[rng.below(population)].get();
        std::uint64_t dice = rng.below(100);
        if (dice < 40) {
            eq.reschedule(ev, eq.curTick() + 1 + rng.below(997));
        } else if (dice < 60) {
            if (ev->scheduled())
                eq.deschedule(ev);
        } else {
            eq.step();
        }
    }
    eq.run();
    double secs = secondsSince(start);
    return double(total_ops) / secs;
}

/** sweep: the golden-test quick matrix end to end (serially, so the
 *  wall clock measures the kernel and models, not the thread pool).
 *  @return {events per second, total events}. */
std::pair<double, std::uint64_t>
runSweepQuick(double scale)
{
    const std::vector<systems::SystemKind> kinds = {
        systems::SystemKind::dramLess,
        systems::SystemKind::integratedSlc,
        systems::SystemKind::hetero,
    };
    const std::vector<const char *> workloads = {"gemver", "doitg"};

    systems::SystemOptions opts;
    opts.workloadScale = scale;

    std::uint64_t events = 0;
    auto start = Clock::now();
    for (auto kind : kinds) {
        for (const char *wl : workloads) {
            auto sys = systems::SystemFactory::create(kind, opts);
            systems::RunResult r =
                sys->run(workload::Polybench::byName(wl));
            events += r.eventsProcessed;
        }
    }
    double secs = secondsSince(start);
    return {double(events) / secs, events};
}

/** Scaling curve of the sharded kernel on the co-simulated 4-node
 *  serving fleet (the multi-node workload PDES was built for). */
struct PdesMetrics
{
    /** Events/sec at 1, 2 and 4 kernel workers (same event count —
     *  the run is bit-identical across worker counts). */
    double s1Eps = 0.0;
    double s2Eps = 0.0;
    double s4Eps = 0.0;
    /** Wall-clock speedup of 4 workers over the serial kernel. */
    double speedup4 = 0.0;
    /** Deterministic totals of one run. */
    std::uint64_t events = 0;
    std::uint64_t windows = 0;
};

/**
 * pdes: N requests through 4 co-simulated DRAM-less nodes behind a
 * jsq dispatcher, at 1/2/4 kernel workers. The event total is
 * identical at every worker count (conservative PDES is
 * deterministic), so events/sec differences are pure wall clock.
 * Worker counts are forced — not clamped to the host — so the curve
 * is comparable across machines; host_cores in the JSON says whether
 * the machine could actually exploit it.
 */
PdesMetrics
runPdesScaling(int reps, bool quick)
{
    serve::CoSimConfig cfg;
    cfg.fleet.numNodes = 4;
    cfg.fleet.queueCapacity = 8;
    cfg.fleet.policy = serve::DispatchPolicy::joinShortestQueue;
    cfg.node.numPes = 4;
    cfg.node.seed = 13;
    std::vector<std::shared_ptr<const workload::WorkloadModel>> mix =
        {workload::modelFor(workload::Polybench::byName("gemver"))
             ->scaled(0.004),
         workload::modelFor(workload::Polybench::byName("trisolv"))
             ->scaled(0.004)};

    serve::ArrivalConfig ac;
    ac.numRequests = quick ? 48 : 192;
    ac.ratePerSec = 40000.0;
    ac.seed = 13;
    ac.mixWeights = {2.0, 1.0};
    auto schedule = serve::PoissonArrivals(ac).generate();

    PdesMetrics m;
    double wall1 = 0.0, wall4 = 0.0;
    auto measure = [&](unsigned shards, double *eps, double *wall) {
        cfg.node.shards = shards;
        serve::CoSimFleet fleet(cfg, mix);
        double best = 0.0;
        for (int i = 0; i < reps; ++i) {
            auto start = Clock::now();
            fleet.run(schedule);
            double secs = secondsSince(start);
            double rate =
                double(fleet.kernelStats().events) / secs;
            if (rate > best) {
                best = rate;
                *wall = secs;
            }
        }
        m.events = fleet.kernelStats().events;
        m.windows = fleet.kernelStats().windows;
        *eps = best;
    };
    double wall2 = 0.0;
    measure(1, &m.s1Eps, &wall1);
    measure(2, &m.s2Eps, &wall2);
    measure(4, &m.s4Eps, &wall4);
    m.speedup4 = wall4 > 0.0 ? wall1 / wall4 : 0.0;
    return m;
}

unsigned
hostCores()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/** @return best (max) of @p reps calls to @p f. */
template <typename F>
double
bestOf(int reps, F &&f)
{
    double best = 0.0;
    for (int i = 0; i < reps; ++i)
        best = std::max(best, f());
    return best;
}

std::uint64_t
peakRssKib()
{
    struct rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return std::uint64_t(ru.ru_maxrss);
}

/** Extract the number following "key": in a JSON file we wrote
 *  ourselves (flat metric object; no nested duplicates of the key). */
bool
extractNumber(const std::string &text, const std::string &key,
              double *out)
{
    std::string needle = "\"" + key + "\":";
    auto pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    const char *p = text.c_str() + pos + needle.size();
    char *end = nullptr;
    double v = std::strtod(p, &end);
    if (end == p)
        return false;
    *out = v;
    return true;
}

struct Metrics
{
    double steadyEps = 0.0;
    double churnOps = 0.0;
    double sweepEps = 0.0;
    std::uint64_t sweepEvents = 0;
    PdesMetrics pdes;
};

void
writeJson(std::ostream &os, const Metrics &m, bool quick)
{
    json::JsonWriter w(os);
    w.beginObject();
    w.keyValue("bench", "micro_kernel");
    w.keyValue("quick", quick);
    w.keyValue("host_cores", std::uint64_t(hostCores()));
    w.key("metrics");
    w.beginObject();
    w.keyValue("steady_events_per_sec", m.steadyEps);
    w.keyValue("churn_ops_per_sec", m.churnOps);
    w.keyValue("sweep_events_per_sec", m.sweepEps);
    w.keyValue("sweep_events", m.sweepEvents);
    w.keyValue("pdes_s1_events_per_sec", m.pdes.s1Eps);
    w.keyValue("pdes_s2_events_per_sec", m.pdes.s2Eps);
    w.keyValue("pdes_s4_events_per_sec", m.pdes.s4Eps);
    w.keyValue("pdes_speedup_s4", m.pdes.speedup4);
    w.keyValue("pdes_events", m.pdes.events);
    w.keyValue("pdes_windows", m.pdes.windows);
    w.keyValue("peak_rss_kib", peakRssKib());
    w.endObject();
    w.endObject();
    os << "\n";
}

int
checkAgainst(const std::string &path, const Metrics &m)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr,
                     "micro_kernel: no baseline at %s; skipping "
                     "regression check\n",
                     path.c_str());
        return 0;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    double tol = 0.20;
    if (const char *env = std::getenv("DRAMLESS_PERF_TOLERANCE")) {
        double v = std::atof(env);
        if (v > 0.0)
            tol = v;
    }

    // The pdes throughput numbers time a multi-millisecond co-sim
    // run whose wall clock includes thread creation and OS
    // scheduling, so they are noisier than the tight single-thread
    // event loops above them — they get double the tolerance. The
    // deterministic pdes counters below gate the structural
    // regressions (window blow-up) at full strictness instead.
    struct Check
    {
        const char *key;
        double now;
        double tolScale;
    } checks[] = {
        {"steady_events_per_sec", m.steadyEps, 1.0},
        {"churn_ops_per_sec", m.churnOps, 1.0},
        {"sweep_events_per_sec", m.sweepEps, 1.0},
        {"pdes_s1_events_per_sec", m.pdes.s1Eps, 2.0},
        {"pdes_s4_events_per_sec", m.pdes.s4Eps, 2.0},
    };
    int rc = 0;
    for (const auto &c : checks) {
        double base = 0.0;
        if (!extractNumber(text, c.key, &base) || base <= 0.0) {
            std::fprintf(stderr,
                         "micro_kernel: baseline lacks %s; skipped\n",
                         c.key);
            continue;
        }
        double ctol = tol * c.tolScale;
        double ratio = c.now / base;
        std::printf("%-24s %12.3e vs baseline %12.3e  (%.2fx)\n",
                    c.key, c.now, base, ratio);
        if (ratio < 1.0 - ctol) {
            std::fprintf(stderr,
                         "micro_kernel: %s regressed %.1f%% "
                         "(tolerance %.0f%%)\n",
                         c.key, (1.0 - ratio) * 100.0, ctol * 100.0);
            rc = 1;
        }
    }

    // Deterministic counters: identical on every run of the same
    // binary, so a structural regression shows up here long before
    // wall-clock noise could trip the throughput gates. Gate each
    // count upward: more sweep heap pops means the coalescing
    // regressed; more pdes events or synchronization windows for
    // the same request schedule means the lookahead shrank or the
    // window protocol degenerated toward lockstep — the
    // shard-efficiency collapse that is machine-independent.
    struct CountCheck
    {
        const char *key;
        double now;
        const char *blame;
    } counts[] = {
        {"sweep_events", double(m.sweepEvents),
         "coalescing regression?"},
        {"pdes_events", double(m.pdes.events),
         "co-sim event blow-up?"},
        {"pdes_windows", double(m.pdes.windows),
         "lookahead/window-protocol regression?"},
    };
    for (const auto &c : counts) {
        double base = 0.0;
        if (!extractNumber(text, c.key, &base) || base <= 0.0) {
            std::fprintf(stderr,
                         "micro_kernel: baseline lacks %s; skipped\n",
                         c.key);
            continue;
        }
        double ratio = c.now / base;
        std::printf("%-24s %12.3e vs baseline %12.3e  (%.2fx)\n",
                    c.key, c.now, base, ratio);
        if (ratio > 1.0 + tol) {
            std::fprintf(stderr,
                         "micro_kernel: %s blew up %.1f%% "
                         "(tolerance %.0f%%) — %s\n",
                         c.key, (ratio - 1.0) * 100.0, tol * 100.0,
                         c.blame);
            rc = 1;
        }
    }

    // Shard-scaling efficiency gate. Comparable only when both the
    // baseline machine and this one have the cores to scale on: a
    // 1-core container legitimately measures speedup ~1.0 at forced
    // 4 workers, and gating that against a 4-core baseline (or vice
    // versa) would only measure the hardware. When both sides have
    // >= 4 cores, a 4-worker speedup collapsing below the baseline
    // by more than the tolerance fails — that is the "parallel
    // kernel quietly serialized" regression this gate exists for.
    double base_cores = 0.0, base_speedup = 0.0;
    if (extractNumber(text, "host_cores", &base_cores) &&
        extractNumber(text, "pdes_speedup_s4", &base_speedup) &&
        base_cores >= 4.0 && hostCores() >= 4 &&
        base_speedup > 0.0) {
        double ratio = m.pdes.speedup4 / base_speedup;
        std::printf("%-24s %12.3f vs baseline %12.3f  (%.2fx)\n",
                    "pdes_speedup_s4", m.pdes.speedup4,
                    base_speedup, ratio);
        if (ratio < 1.0 - tol) {
            std::fprintf(stderr,
                         "micro_kernel: 4-shard scaling collapsed "
                         "%.1f%% (%.2fx -> %.2fx, tolerance "
                         "%.0f%%)\n",
                         (1.0 - ratio) * 100.0, base_speedup,
                         m.pdes.speedup4, tol * 100.0);
            rc = 1;
        }
    }
    return rc;
}

} // anonymous namespace
} // namespace dramless

int
main(int argc, char **argv)
{
    using namespace dramless;

    bool quick = false;
    std::string baseline;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--check-against") == 0 &&
                   i + 1 < argc) {
            baseline = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] "
                         "[--check-against BENCH.json]\n",
                         argv[0]);
            return 2;
        }
    }

    setQuiet(true);
    const int reps = quick ? 3 : 5;
    const std::uint64_t steadyTotal = quick ? 2'000'000 : 10'000'000;
    const std::uint64_t churnOps = quick ? 2'000'000 : 10'000'000;
    const double sweepScale = quick ? 0.02 : 0.05;

    Metrics m;
    m.steadyEps =
        bestOf(reps, [&] { return runSteady(steadyTotal, 64); });
    std::printf("steady  %12.3e events/sec\n", m.steadyEps);
    m.churnOps =
        bestOf(reps, [&] { return runChurn(churnOps, 4096); });
    std::printf("churn   %12.3e ops/sec\n", m.churnOps);
    double sweepBest = 0.0;
    std::uint64_t sweepEvents = 0;
    for (int i = 0; i < reps; ++i) {
        auto [eps, events] = runSweepQuick(sweepScale);
        sweepBest = std::max(sweepBest, eps);
        sweepEvents = events;
    }
    m.sweepEps = sweepBest;
    m.sweepEvents = sweepEvents;
    std::printf("sweep   %12.3e events/sec (%llu events)\n",
                m.sweepEps, (unsigned long long)m.sweepEvents);
    m.pdes = runPdesScaling(reps, quick);
    std::printf("pdes    %12.3e / %12.3e / %12.3e events/sec "
                "(1/2/4 shards, %llu events, %llu windows, "
                "s4 speedup %.2fx, %u cores)\n",
                m.pdes.s1Eps, m.pdes.s2Eps, m.pdes.s4Eps,
                (unsigned long long)m.pdes.events,
                (unsigned long long)m.pdes.windows,
                m.pdes.speedup4, hostCores());
    std::printf("peakRSS %12llu KiB\n",
                (unsigned long long)peakRssKib());

    if (const char *out = std::getenv("DRAMLESS_OUT_JSON")) {
        std::ofstream os(out);
        if (!os) {
            std::fprintf(stderr, "micro_kernel: cannot write %s\n",
                         out);
            return 1;
        }
        writeJson(os, m, quick);
    } else {
        writeJson(std::cout, m, quick);
    }

    if (!baseline.empty())
        return checkAgainst(baseline, m);
    return 0;
}
