/**
 * @file
 * Figure 17: energy decomposition of every system over Polybench.
 * Headline: DRAM-less consumes ~19% of the energy of the advanced
 * (peer-to-peer DMA) accelerated systems, and ~24% of PAGE-buffer
 * ("76% less energy").
 */

#include <cstdio>

#include "harness.hh"

using namespace dramless;

int
main()
{
    auto opts = bench::defaultOptions();
    std::printf("Figure 17: energy decomposition (scale %.2f)\n\n",
                opts.workloadScale);

    auto kinds = systems::SystemFactory::evaluationOrder();
    bench::ResultMatrix m = bench::runMatrix(kinds, opts);

    auto sink = bench::makeSink(
        "fig17_energy", "Figure 17: energy decomposition", opts);
    sink.add(m);

    std::printf("suite totals in mJ:\n");
    std::printf("%-22s %8s %8s %8s %8s %8s %8s %9s\n", "system",
                "host", "PCIe", "cores", "DRAM", "media", "ctrl",
                "total");
    std::printf("%.*s\n", 84,
                "--------------------------------------------------"
                "----------------------------------");
    std::map<std::string, double> totals;
    for (auto kind : kinds) {
        const char *label = systems::SystemFactory::label(kind);
        energy::EnergyBreakdown sum;
        for (const auto &spec : workload::Polybench::all())
            sum += m.at(label).at(spec.name).energy;
        totals[label] = sum.total();
        sink.metric(std::string(label) + "/suite_energy_j",
                    sum.total());
        std::printf("%-22s %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f"
                    " %9.1f\n",
                    label, sum.hostStack * 1e3, sum.pcie * 1e3,
                    sum.accelCores * 1e3, sum.dram * 1e3,
                    sum.storageMedia * 1e3, sum.controller * 1e3,
                    sum.total() * 1e3);
    }

    std::printf("\nheadline ratios                     measured   "
                "paper\n");
    std::printf("  DRAM-less / Heterodirect          %8.2f   0.19\n",
                totals["DRAM-less"] / totals["Heterodirect"]);
    std::printf("  DRAM-less / Heterodirect-PRAM     %8.2f   0.19\n",
                totals["DRAM-less"] / totals["Heterodirect-PRAM"]);
    std::printf("  DRAM-less / PAGE-buffer           %8.2f   0.24\n",
                totals["DRAM-less"] / totals["PAGE-buffer"]);
    std::printf("  DRAM-less / Hetero                %8.2f   ~0.11\n",
                totals["DRAM-less"] / totals["Hetero"]);

    std::printf("\nper-workload total energy (mJ), read- vs "
                "write-intensive extremes:\n");
    std::printf("%-22s %10s %10s\n", "system", "gemver", "doitg");
    for (auto kind : kinds) {
        const char *label = systems::SystemFactory::label(kind);
        std::printf("%-22s %10.2f %10.2f\n", label,
                    m.at(label).at("gemver").energy.total() * 1e3,
                    m.at(label).at("doitg").energy.total() * 1e3);
    }

    sink.metric("ratio_dramless_over_heterodirect",
                totals["DRAM-less"] / totals["Heterodirect"]);
    sink.metric("ratio_dramless_over_heterodirect_pram",
                totals["DRAM-less"] / totals["Heterodirect-PRAM"]);
    sink.metric("ratio_dramless_over_pagebuffer",
                totals["DRAM-less"] / totals["PAGE-buffer"]);
    sink.metric("ratio_dramless_over_hetero",
                totals["DRAM-less"] / totals["Hetero"]);
    sink.exportFromEnv();
    return 0;
}
