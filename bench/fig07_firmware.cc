/**
 * @file
 * Figure 7: performance degradation of managing the PRAM with
 * traditional SSD firmware (3-core 500 MHz embedded CPU) compared
 * to an oracle PRAM controller with no management overhead — the
 * motivation for hardware automation. The paper reports up to 80%
 * degradation on data-intensive workloads.
 */

#include <cstdio>

#include "harness.hh"

using namespace dramless;

int
main()
{
    auto opts = bench::defaultOptions();
    std::printf("Figure 7: firmware-managed PRAM vs oracle "
                "controller (scale %.2f)\n\n",
                opts.workloadScale);
    std::printf("%-8s %14s %14s %14s\n", "kernel", "oracle MB/s",
                "firmware MB/s", "degradation");
    std::printf("%.*s\n", 54,
                "------------------------------------------------"
                "----------");

    // The oracle is the hardware-automated DRAM-less controller
    // with zero management overhead on the I/O path.
    bench::ResultMatrix m =
        bench::runMatrix({systems::SystemKind::dramLess,
                          systems::SystemKind::dramLessFirmware},
                         opts);
    auto sink = bench::makeSink(
        "fig07_firmware",
        "Figure 7: firmware-managed PRAM vs oracle controller",
        opts);
    sink.add(m);

    std::vector<double> degr;
    double worst = 0.0;
    for (const auto &spec : workload::Polybench::all()) {
        const auto &oracle = m.at("DRAM-less").at(spec.name);
        const auto &fw = m.at("DRAM-less (firmware)").at(spec.name);
        double d = 1.0 - fw.bandwidthMBps / oracle.bandwidthMBps;
        degr.push_back(std::max(1e-6, d));
        worst = std::max(worst, d);
        std::printf("%-8s %14.1f %14.1f %13.1f%%\n",
                    spec.name.c_str(), oracle.bandwidthMBps,
                    fw.bandwidthMBps, d * 100.0);
    }
    double sum = 0;
    for (double d : degr)
        sum += d;
    std::printf("%.*s\n", 54,
                "------------------------------------------------"
                "----------");
    std::printf("%-8s %43.1f%%\n", "mean", sum / degr.size() * 100.0);
    std::printf("%-8s %43.1f%%\n", "worst", worst * 100.0);
    std::printf("\npaper: the firmware degrades system performance "
                "by up to 80%% on the\ndata-intensive workloads, "
                "because its execution time exceeds the PRAM\n"
                "access latency and requests serialize behind it.\n");

    sink.metric("mean_degradation", sum / degr.size());
    sink.metric("worst_degradation", worst);
    sink.exportFromEnv();
    return 0;
}
