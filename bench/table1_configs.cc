/**
 * @file
 * Table I: important configuration parameters for all accelerated
 * systems evaluated.
 */

#include <cstdio>

#include "harness.hh"

using namespace dramless;

namespace
{

void
sinkRow(runner::ResultSink &sink, const systems::SystemInfo &info)
{
    std::string base = info.label;
    sink.label(base + "/heterogeneous",
               info.heterogeneous ? "yes" : "no");
    sink.label(base + "/internal_dram",
               info.internalDram ? "yes" : "no");
    sink.label(base + "/nvm_read_us", info.nvmRead);
    sink.label(base + "/nvm_write_us", info.nvmWrite);
    sink.label(base + "/nvm_erase_us", info.nvmErase);
}

} // anonymous namespace

int
main()
{
    runner::ResultSink sink(
        "table1_configs",
        "Table I: configuration of the evaluated systems");
    std::printf("Table I: configuration of the evaluated systems\n");
    std::printf("%-19s %-6s %-9s %-10s %-10s %-10s\n", "system",
                "hetero", "int.DRAM", "read(us)", "write(us)",
                "erase(us)");
    std::printf("%.*s\n", 70,
                "----------------------------------------"
                "----------------------------------------");
    for (auto kind : systems::SystemFactory::evaluationOrder()) {
        systems::SystemInfo info = systems::SystemFactory::info(kind);
        std::printf("%-19s %-6s %-9s %-10s %-10s %-10s\n", info.label,
                    info.heterogeneous ? "yes" : "no",
                    info.internalDram ? "yes" : "no", info.nvmRead,
                    info.nvmWrite, info.nvmErase);
        sinkRow(sink, info);
    }
    auto fw = systems::SystemFactory::info(
        systems::SystemKind::dramLessFirmware);
    std::printf("%-19s %-6s %-9s %-10s %-10s %-10s\n", fw.label,
                fw.heterogeneous ? "yes" : "no",
                fw.internalDram ? "yes" : "no", fw.nvmRead,
                fw.nvmWrite, fw.nvmErase);
    sinkRow(sink, fw);
    sink.exportFromEnv();
    return 0;
}
