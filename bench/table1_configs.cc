/**
 * @file
 * Table I: important configuration parameters for all accelerated
 * systems evaluated.
 */

#include <cstdio>

#include "harness.hh"

using namespace dramless;

int
main()
{
    std::printf("Table I: configuration of the evaluated systems\n");
    std::printf("%-19s %-6s %-9s %-10s %-10s %-10s\n", "system",
                "hetero", "int.DRAM", "read(us)", "write(us)",
                "erase(us)");
    std::printf("%.*s\n", 70,
                "----------------------------------------"
                "----------------------------------------");
    for (auto kind : systems::SystemFactory::evaluationOrder()) {
        systems::SystemInfo info = systems::SystemFactory::info(kind);
        std::printf("%-19s %-6s %-9s %-10s %-10s %-10s\n", info.label,
                    info.heterogeneous ? "yes" : "no",
                    info.internalDram ? "yes" : "no", info.nvmRead,
                    info.nvmWrite, info.nvmErase);
    }
    auto fw = systems::SystemFactory::info(
        systems::SystemKind::dramLessFirmware);
    std::printf("%-19s %-6s %-9s %-10s %-10s %-10s\n", fw.label,
                fw.heterogeneous ? "yes" : "no",
                fw.internalDram ? "yes" : "no", fw.nvmRead,
                fw.nvmWrite, fw.nvmErase);
    return 0;
}
