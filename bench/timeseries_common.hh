/**
 * @file
 * Shared driver for the time-series figures: total-IPC traces
 * (Figures 18/19) and core-power / cumulative-energy captures
 * (Figures 20/21).
 */

#ifndef DRAMLESS_BENCH_TIMESERIES_COMMON_HH
#define DRAMLESS_BENCH_TIMESERIES_COMMON_HH

#include <cstdio>

#include "harness.hh"

namespace dramless
{
namespace bench
{

/** Systems compared in the time-series figures. */
inline std::vector<systems::SystemKind>
timeSeriesKinds()
{
    return {systems::SystemKind::integratedSlc,
            systems::SystemKind::integratedMlc,
            systems::SystemKind::integratedTlc,
            systems::SystemKind::pageBuffer,
            systems::SystemKind::norIntf,
            systems::SystemKind::dramLess};
}

/** Run @p kinds on one workload concurrently, keyed by label. */
inline std::map<std::string, systems::RunResult>
runKindsOnWorkload(const std::vector<systems::SystemKind> &kinds,
                   const workload::WorkloadSpec &spec,
                   const systems::SystemOptions &opts)
{
    std::vector<runner::SweepJob> jobs;
    for (auto kind : kinds)
        jobs.push_back(runner::makeJob(kind, spec, opts));
    std::vector<systems::RunResult> results = runJobs(jobs);
    std::map<std::string, systems::RunResult> out;
    for (std::size_t i = 0; i < jobs.size(); ++i)
        out[jobs[i].system] = results[i];
    return out;
}

/** Figures 18/19: total IPC over time for workload @p name. */
inline int
ipcFigure(const char *id, const char *figure, const char *name)
{
    auto opts = defaultOptions();
    opts.sampleInterval = fromUs(10);
    std::printf("%s: total IPC (all agents) over time, %s "
                "(scale %.2f)\n\n",
                figure, name, opts.workloadScale);
    const auto &spec = workload::Polybench::byName(name);

    auto results = runKindsOnWorkload(timeSeriesKinds(), spec, opts);

    auto sink = makeSink(
        id, std::string(figure) + ": total IPC over time, " + name,
        opts);
    // The series are the figure: export them at full resolution.
    sink.setSeriesPoints(0);
    for (const auto &[_, r] : results)
        sink.add(r);

    // Common time axis: plot each series against the slowest run so
    // idle (zero-IPC) gaps are visible.
    std::printf("IPC over time (60 buckets across each run; '@'=peak)"
                ":\n");
    for (auto kind : timeSeriesKinds()) {
        const char *label = systems::SystemFactory::label(kind);
        printSeries(label, results.at(label).ipc, 60);
    }

    std::printf("\nsummary:\n");
    std::printf("%-22s %10s %10s %12s %10s\n", "system", "mean IPC",
                "peak IPC", "zero-IPC %", "exec ms");
    for (auto kind : timeSeriesKinds()) {
        const char *label = systems::SystemFactory::label(kind);
        const auto &r = results.at(label);
        double peak = 0.0;
        std::uint64_t zeros = 0;
        for (const auto &p : r.ipc.samples()) {
            peak = std::max(peak, p.value);
            zeros += p.value < 0.05 ? 1 : 0;
        }
        double zero_frac =
            double(zeros) /
            double(std::max<std::size_t>(1, r.ipc.size()));
        std::printf("%-22s %10.2f %10.2f %11.1f%% %10.2f\n", label,
                    r.ipc.mean(), peak, 100.0 * zero_frac,
                    toMs(r.execTime));
        sink.metric(std::string(label) + "/mean_ipc", r.ipc.mean());
        sink.metric(std::string(label) + "/zero_ipc_fraction",
                    zero_frac);
    }
    std::printf("\npaper shapes: page-granule systems show idle "
                "(zero-IPC) periods during storage\naccesses; "
                "DRAM-less and NOR-intf sustain nonzero IPC; "
                "DRAM-less's IPC dominates.\n");
    sink.exportFromEnv();
    return 0;
}

/** Figures 20/21: core power and cumulative energy for the first
 *  16 KiB of data processing of workload @p name. */
inline int
powerFigure(const char *id, const char *figure, const char *name)
{
    auto opts = defaultOptions();
    // First-16KiB capture: shrink the workload so the suite's
    // volumes land near 16 KiB of traffic, sampled finely.
    const auto &base = workload::Polybench::byName(name);
    double scale = 16384.0 / double(base.totalBytes());
    opts.workloadScale = scale;
    opts.sampleInterval = fromUs(2);

    std::printf("%s: core power and total energy, first 16 KiB of "
                "%s\n\n",
                figure, name);
    const std::vector<systems::SystemKind> kinds = {
        systems::SystemKind::integratedSlc,
        systems::SystemKind::pageBuffer,
        systems::SystemKind::norIntf,
        systems::SystemKind::dramLess,
    };

    auto results = runKindsOnWorkload(kinds, base, opts);

    auto sink = makeSink(
        id, std::string(figure) +
                ": core power and total energy, first 16 KiB of " +
                name,
        opts);
    sink.setSeriesPoints(0);
    for (const auto &[_, r] : results)
        sink.add(r);

    std::printf("agent core power over time (60 buckets; "
                "'@'=10 W):\n");
    for (auto kind : kinds) {
        const char *label = systems::SystemFactory::label(kind);
        printSeries(label, results.at(label).corePower, 60, 10.0);
    }

    std::printf("\nsummary:\n");
    std::printf("%-22s %12s %12s %14s\n", "system", "mean power W",
                "exec ms", "total energy uJ");
    for (auto kind : kinds) {
        const char *label = systems::SystemFactory::label(kind);
        const auto &r = results.at(label);
        std::printf("%-22s %12.2f %12.3f %14.1f\n", label,
                    r.corePower.timeWeightedMean(), toMs(r.execTime),
                    r.energy.total() * 1e6);
        sink.metric(std::string(label) + "/mean_power_w",
                    r.corePower.timeWeightedMean());
        sink.metric(std::string(label) + "/total_energy_j",
                    r.energy.total());
    }
    std::printf("\npaper shapes: NOR-intf runs at the lowest core "
                "power (its .D units stall the\nother FUs) but takes "
                "so long that its energy exceeds DRAM-less; "
                "DRAM-less\nfinishes first at moderate power, with "
                "the lowest total energy.\n");
    sink.exportFromEnv();
    return 0;
}

} // namespace bench
} // namespace dramless

#endif // DRAMLESS_BENCH_TIMESERIES_COMMON_HH
