/**
 * @file
 * Figure 15: data-processing throughput of the ten accelerated
 * systems across Polybench, normalized to Hetero. Headline claims:
 * DRAM-less averages +93% over Hetero and +47% over Heterodirect;
 * Heterodirect +25% over Hetero; DRAM-less +25% over DRAM-less
 * (firmware); PAGE-buffer well above Integrated-SLC.
 */

#include <cstdio>

#include "harness.hh"

using namespace dramless;

int
main()
{
    auto opts = bench::defaultOptions();
    std::printf("Figure 15: throughput normalized to Hetero "
                "(scale %.2f)\n\n",
                opts.workloadScale);

    auto kinds = systems::SystemFactory::evaluationOrder();
    kinds.push_back(systems::SystemKind::dramLessFirmware);
    bench::ResultMatrix m = bench::runMatrix(kinds, opts);

    const auto &hetero = m.at("Hetero");
    bench::printHeader("system \\ workload", bench::workloadColumns(),
                       8);
    std::printf("%.*s\n", 142,
                "--------------------------------------------------"
                "--------------------------------------------------"
                "------------------------------------------");
    for (auto kind : kinds) {
        const char *label = systems::SystemFactory::label(kind);
        const auto &row = m.at(label);
        std::vector<double> cells;
        std::vector<double> norm;
        for (const auto &spec : workload::Polybench::all()) {
            double v = row.at(spec.name).bandwidthMBps /
                       hetero.at(spec.name).bandwidthMBps;
            cells.push_back(v);
            norm.push_back(v);
        }
        std::printf("%-22s", label);
        for (double v : cells)
            std::printf("%8.2f", v);
        std::printf("  | gm %.2f\n", stats::geomean(norm));
    }

    auto sink = bench::makeSink(
        "fig15_bandwidth",
        "Figure 15: throughput normalized to Hetero", opts);
    sink.add(m);

    // Headline ratios.
    auto gm = [&](const char *a, const char *b) {
        std::vector<double> r;
        for (const auto &spec : workload::Polybench::all())
            r.push_back(m.at(a).at(spec.name).bandwidthMBps /
                        m.at(b).at(spec.name).bandwidthMBps);
        return stats::geomean(r);
    };
    std::printf("\nheadline ratios (geomean)        measured   "
                "paper\n");
    std::printf("  DRAM-less / Hetero             %8.2f   1.93\n",
                gm("DRAM-less", "Hetero"));
    std::printf("  DRAM-less / Heterodirect       %8.2f   1.47\n",
                gm("DRAM-less", "Heterodirect"));
    std::printf("  Heterodirect / Hetero          %8.2f   1.25\n",
                gm("Heterodirect", "Hetero"));
    std::printf("  DRAM-less / DRAM-less(fw)      %8.2f   1.25\n",
                gm("DRAM-less", "DRAM-less (firmware)"));
    std::printf("  DRAM-less / PAGE-buffer        %8.2f   1.64\n",
                gm("DRAM-less", "PAGE-buffer"));
    std::printf("  DRAM-less / Integrated-SLC     %8.2f   1.80\n",
                gm("DRAM-less", "Integrated-SLC"));
    std::printf("  Integrated-SLC / NOR-intf      %8.2f   1.37\n",
                gm("Integrated-SLC", "NOR-intf"));

    // Memory-intensive subset (paper: +149% over PAGE-buffer).
    std::vector<double> mem;
    for (const char *w : {"durbin", "dynpro", "jaco1D", "regd"}) {
        mem.push_back(m.at("DRAM-less").at(w).bandwidthMBps /
                      m.at("PAGE-buffer").at(w).bandwidthMBps);
    }
    std::printf("  DRAM-less / PAGE-buffer on memory-intensive"
                " (durbin,dynpro,jaco1D,regd): %.2f (paper 2.49)\n",
                stats::geomean(mem));

    sink.metric("gm_dramless_over_hetero", gm("DRAM-less", "Hetero"));
    sink.metric("gm_dramless_over_heterodirect",
                gm("DRAM-less", "Heterodirect"));
    sink.metric("gm_heterodirect_over_hetero",
                gm("Heterodirect", "Hetero"));
    sink.metric("gm_dramless_over_firmware",
                gm("DRAM-less", "DRAM-less (firmware)"));
    sink.metric("gm_dramless_over_pagebuffer",
                gm("DRAM-less", "PAGE-buffer"));
    sink.metric("gm_dramless_over_integrated_slc",
                gm("DRAM-less", "Integrated-SLC"));
    sink.metric("gm_dramless_over_pagebuffer_memintensive",
                stats::geomean(mem));
    sink.exportFromEnv();
    return 0;
}
