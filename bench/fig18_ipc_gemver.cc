/**
 * @file
 * Figure 18: total-IPC time series under the read-intensive gemver.
 */

#include "timeseries_common.hh"

int
main()
{
    return dramless::bench::ipcFigure("Figure 18", "gemver");
}
