/**
 * @file
 * Figure 18: total-IPC time series under the read-intensive gemver.
 */

#include "timeseries_common.hh"

int
main()
{
    return dramless::bench::ipcFigure("fig18_ipc_gemver",
                                      "Figure 18", "gemver");
}
