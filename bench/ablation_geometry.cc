/**
 * @file
 * Ablations over the PRAM microarchitecture knobs DESIGN.md calls
 * out: row-buffer count (related work [60] reports multi-row
 * buffers cut latency/energy ~45%/69%), partition count (the
 * source of array-level parallelism), and program-buffer slots
 * (write concurrency).
 */

#include <cstdio>

#include "harness.hh"

using namespace dramless;

namespace
{

double
bwWith(const pram::PramGeometry &geom, const char *wl,
       const systems::SystemOptions &base)
{
    systems::SystemOptions opts = base;
    opts.geometryOverride = geom;
    auto sys = systems::SystemFactory::create(
        systems::SystemKind::dramLess, opts);
    return sys->run(workload::Polybench::byName(wl)).bandwidthMBps;
}

} // anonymous namespace

int
main()
{
    auto opts = bench::defaultOptions();
    const char *kernels[] = {"gemver", "trmm", "doitg"};

    std::printf("Ablation: row buffers (RAB/RDB pairs), DRAM-less "
                "bandwidth in MB/s (scale %.2f)\n",
                opts.workloadScale);
    std::printf("%-12s %10s %10s %10s\n", "rowBuffers", "gemver",
                "trmm", "doitg");
    for (std::uint32_t n : {1u, 2u, 4u, 8u}) {
        pram::PramGeometry g;
        g.numRowBuffers = n;
        std::printf("%-12u", n);
        for (const char *wl : kernels)
            std::printf(" %10.1f", bwWith(g, wl, opts));
        std::printf("\n");
    }

    std::printf("\nAblation: partitions per bank\n");
    std::printf("%-12s %10s %10s %10s\n", "partitions", "gemver",
                "trmm", "doitg");
    for (std::uint32_t n : {4u, 8u, 16u, 32u}) {
        pram::PramGeometry g;
        g.partitionsPerBank = n;
        std::printf("%-12u", n);
        for (const char *wl : kernels)
            std::printf(" %10.1f", bwWith(g, wl, opts));
        std::printf("\n");
    }

    std::printf("\nAblation: concurrent program slots (overlay "
                "windows / program buffers)\n");
    std::printf("%-12s %10s %10s %10s\n", "slots", "gemver", "trmm",
                "doitg");
    for (std::uint32_t n : {1u, 2u, 4u, 8u}) {
        pram::PramGeometry g;
        g.programSlots = n;
        std::printf("%-12u", n);
        for (const char *wl : kernels)
            std::printf(" %10.1f", bwWith(g, wl, opts));
        std::printf("\n");
    }

    std::printf("\nAblation: sequential RDB prefetching "
                "(Section III-B extension)\n");
    std::printf("%-12s %10s %10s %10s\n", "prefetch", "gemver",
                "trmm", "doitg");
    for (bool pf : {false, true}) {
        systems::SystemOptions o = opts;
        ctrl::SchedulerConfig sc = ctrl::SchedulerConfig::finalConfig();
        sc.rdbPrefetch = pf;
        o.schedulerOverride = sc;
        std::printf("%-12s", pf ? "on" : "off");
        for (const char *wl : kernels) {
            auto sys = systems::SystemFactory::create(
                systems::SystemKind::dramLess, o);
            std::printf(" %10.1f",
                        sys->run(workload::Polybench::byName(wl))
                            .bandwidthMBps);
        }
        std::printf("\n");
    }

    std::printf("\nshapes: more row buffers raise hit/skip rates; "
                "partitions feed the\ninterleaver; program slots set "
                "the write-bandwidth ceiling (write-heavy\nkernels "
                "move most); prefetching warms streaming reads.\n");
    return 0;
}
