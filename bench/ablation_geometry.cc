/**
 * @file
 * Ablations over the PRAM microarchitecture knobs DESIGN.md calls
 * out: row-buffer count (related work [60] reports multi-row
 * buffers cut latency/energy ~45%/69%), partition count (the
 * source of array-level parallelism), and program-buffer slots
 * (write concurrency). All configurations are independent, so the
 * whole ablation grid runs as one parallel sweep.
 */

#include <cstdio>

#include "harness.hh"

using namespace dramless;

namespace
{

const char *kernels[] = {"gemver", "trmm", "doitg"};

/** A DRAM-less job with an ablated geometry. */
runner::SweepJob
geometryJob(const std::string &label, const pram::PramGeometry &geom,
            const char *wl, const systems::SystemOptions &base)
{
    systems::SystemOptions opts = base;
    opts.geometryOverride = geom;
    const auto &spec = workload::Polybench::byName(wl);
    return runner::SweepJob{
        label, wl, [opts, spec]() {
            auto sys = systems::SystemFactory::create(
                systems::SystemKind::dramLess, opts);
            return sys->run(spec);
        }};
}

/** A DRAM-less job with an ablated scheduler config. */
runner::SweepJob
schedulerJob(const std::string &label,
             const ctrl::SchedulerConfig &sc, const char *wl,
             const systems::SystemOptions &base)
{
    systems::SystemOptions opts = base;
    opts.schedulerOverride = sc;
    const auto &spec = workload::Polybench::byName(wl);
    return runner::SweepJob{
        label, wl, [opts, spec]() {
            auto sys = systems::SystemFactory::create(
                systems::SystemKind::dramLess, opts);
            return sys->run(spec);
        }};
}

/** Print one sweep section from the flat result list. */
void
printSection(const char *title, const char *knob,
             const std::vector<std::string> &row_labels,
             const std::vector<runner::SweepJob> &jobs,
             const std::vector<systems::RunResult> &results,
             runner::ResultSink &sink, std::size_t &idx)
{
    std::printf("%s\n", title);
    std::printf("%-12s %10s %10s %10s\n", knob, kernels[0],
                kernels[1], kernels[2]);
    for (const auto &row : row_labels) {
        std::printf("%-12s", row.c_str());
        for (std::size_t k = 0; k < 3; ++k) {
            double bw = results[idx].bandwidthMBps;
            sink.metric(jobs[idx].system + "/" + jobs[idx].workload +
                            "/bandwidth_mbps",
                        bw);
            std::printf(" %10.1f", bw);
            ++idx;
        }
        std::printf("\n");
    }
    std::printf("\n");
}

} // anonymous namespace

int
main()
{
    auto opts = bench::defaultOptions();

    std::vector<runner::SweepJob> jobs;
    std::vector<std::string> rb_rows, part_rows, slot_rows, pf_rows;

    for (std::uint32_t n : {1u, 2u, 4u, 8u}) {
        pram::PramGeometry g;
        g.numRowBuffers = n;
        rb_rows.push_back(std::to_string(n));
        for (const char *wl : kernels)
            jobs.push_back(geometryJob(
                "rowBuffers=" + std::to_string(n), g, wl, opts));
    }
    for (std::uint32_t n : {4u, 8u, 16u, 32u}) {
        pram::PramGeometry g;
        g.partitionsPerBank = n;
        part_rows.push_back(std::to_string(n));
        for (const char *wl : kernels)
            jobs.push_back(geometryJob(
                "partitions=" + std::to_string(n), g, wl, opts));
    }
    for (std::uint32_t n : {1u, 2u, 4u, 8u}) {
        pram::PramGeometry g;
        g.programSlots = n;
        slot_rows.push_back(std::to_string(n));
        for (const char *wl : kernels)
            jobs.push_back(geometryJob(
                "programSlots=" + std::to_string(n), g, wl, opts));
    }
    for (bool pf : {false, true}) {
        ctrl::SchedulerConfig sc =
            ctrl::SchedulerConfig::finalConfig();
        sc.rdbPrefetch = pf;
        pf_rows.push_back(pf ? "on" : "off");
        for (const char *wl : kernels)
            jobs.push_back(schedulerJob(
                std::string("rdbPrefetch=") + (pf ? "on" : "off"),
                sc, wl, opts));
    }

    std::vector<systems::RunResult> results = bench::runJobs(jobs);
    auto sink = bench::makeSink("ablation_geometry",
                                "PRAM microarchitecture ablations",
                                opts);

    std::size_t idx = 0;
    std::printf("Ablations on DRAM-less bandwidth in MB/s "
                "(scale %.2f)\n\n",
                opts.workloadScale);
    printSection("Ablation: row buffers (RAB/RDB pairs)",
                 "rowBuffers", rb_rows, jobs, results, sink, idx);
    printSection("Ablation: partitions per bank", "partitions",
                 part_rows, jobs, results, sink, idx);
    printSection("Ablation: concurrent program slots (overlay "
                 "windows / program buffers)",
                 "slots", slot_rows, jobs, results, sink, idx);
    printSection("Ablation: sequential RDB prefetching "
                 "(Section III-B extension)",
                 "prefetch", pf_rows, jobs, results, sink, idx);

    std::printf("shapes: more row buffers raise hit/skip rates; "
                "partitions feed the\ninterleaver; program slots set "
                "the write-bandwidth ceiling (write-heavy\nkernels "
                "move most); prefetching warms streaming reads.\n");
    sink.exportFromEnv();
    return 0;
}
