/**
 * @file
 * Reliability ablation: sweep the injected write-error rate against
 * the Start-Gap gap-move period and report (a) sustained write
 * bandwidth under program-and-verify retries and (b) lifetime to the
 * first bad-line remap (demand writes served before a line wears out
 * and is retired into the spare pool).
 *
 * Each cell drives a small PramSubsystem directly (micro-bench
 * idiom, no host stack) so the measured degradation is purely the
 * media/controller reliability path:
 *   - bandwidth sub-run: endurance tracking off, nominal error rate
 *     swept; every verify failure re-pulses the program, so higher
 *     rates stretch the same write stream over more ticks.
 *   - lifetime sub-run: small endurance budget with a worn-line
 *     failure probability; the hammer stops at the first remap, and
 *     shorter gap-move periods spread wear and extend the lifetime.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness.hh"

using namespace dramless;

namespace
{

/** One swept cell. */
struct Cell
{
    double errorRate;
    std::uint64_t gapPeriod;
    systems::RunResult result;
};

/** Tiny two-channel subsystem the hammer can saturate quickly. The
 *  shrunken geometry keeps the physical line count small enough that
 *  the Start-Gap rotation completes several cycles within the
 *  lifetime horizon — on the paper-sized parts the gap would not
 *  revisit the hammered region before the cap. */
ctrl::SubsystemConfig
cellConfig(double error_rate, std::uint64_t gap_period,
           bool endurance)
{
    ctrl::SubsystemConfig cfg;
    cfg.channels = 2;
    cfg.modulesPerChannel = 2;
    cfg.stripeBytes = 128;
    cfg.geometry.tilesPerPartition = 1;
    cfg.geometry.bitlinesPerTile = 64;
    cfg.geometry.wordlinesPerTile = 64;
    cfg.wearLeveling = true;
    cfg.gapMovePeriod = gap_period;
    cfg.reliability.enabled = true;
    cfg.reliability.seed = 7;
    cfg.reliability.writeFailProb = error_rate;
    cfg.reliability.maxProgramRetries = 3;
    cfg.reliability.spareLines = 8;
    if (endurance) {
        // Sized against the rotation: a hammered line stays on one
        // physical line for one full Start-Gap cycle (~176 x period
        // writes here), so the period-4 rotation relocates it before
        // the budget runs out while slower periods let it wear
        // through.
        cfg.reliability.enduranceWrites = 900;
        cfg.reliability.wornWriteFailProb = 0.5;
    }
    return cfg;
}

/** Serially hammer stripe writes round-robin over a small region.
 *  @return demand writes actually issued (stops early at the first
 *  remap when @p stop_at_remap). */
std::uint64_t
hammer(EventQueue &eq, ctrl::PramSubsystem &sys,
       std::uint64_t num_writes, bool stop_at_remap,
       std::uint64_t region_stripes)
{
    std::vector<std::uint8_t> buf(128);
    std::uint64_t issued = 0;
    for (std::uint64_t i = 0; i < num_writes; ++i) {
        for (std::size_t b = 0; b < buf.size(); ++b)
            buf[b] = std::uint8_t(i + b);
        ctrl::MemRequest wr;
        wr.kind = ctrl::ReqKind::write;
        wr.addr = (i % region_stripes) * 128;
        wr.size = 128;
        wr.writeFrom = buf.data();
        sys.enqueue(wr);
        eq.run();
        ++issued;
        if (stop_at_remap &&
            sys.subsystemStats().badLineRemaps > 0)
            break;
    }
    return issued;
}

/** Run both sub-runs for one cell and fill its RunResult. */
systems::RunResult
runCell(double error_rate, std::uint64_t gap_period,
        std::uint64_t bw_writes, std::uint64_t lifetime_cap)
{
    systems::RunResult r;

    // Bandwidth sub-run: no endurance, so degradation comes only
    // from verify retries at the nominal error rate.
    {
        EventQueue eq;
        ctrl::PramSubsystem sys(
            eq, cellConfig(error_rate, gap_period, false), "pram");
        sys.setCallback([](const ctrl::MemResponse &) {});
        sys.initialize();
        Tick start = eq.curTick();
        hammer(eq, sys, bw_writes, false, 8);
        Tick elapsed = eq.curTick() - start;
        r.execTime = elapsed;
        r.bytesProcessed = bw_writes * 128;
        if (elapsed > 0) {
            r.bandwidthMBps = double(r.bytesProcessed) /
                              (double(elapsed) / double(tickPerSec)) /
                              1e6;
        }
        for (std::uint32_t c = 0; c < sys.numChannels(); ++c) {
            r.reliability.verifyRetries +=
                sys.channel(c).ctrlStats().verifyRetries;
            r.reliability.failedWrites +=
                sys.channel(c).ctrlStats().verifyFailedWrites;
        }
        r.reliability.gapMoveWrites =
            sys.subsystemStats().gapMoveWrites;
    }

    // Lifetime sub-run: endurance budget on, a single hammered
    // stripe (worst-case skew), stop at the first remap. When the
    // cap is reached without a remap the lifetime is censored at the
    // cap — the rotation relocated the line faster than it wore.
    {
        EventQueue eq;
        ctrl::PramSubsystem sys(
            eq, cellConfig(error_rate, gap_period, true), "pram");
        sys.setCallback([](const ctrl::MemResponse &) {});
        sys.initialize();
        std::uint64_t issued = hammer(eq, sys, lifetime_cap, true, 1);
        const auto &st = sys.subsystemStats();
        r.reliability.badLineRemaps = st.badLineRemaps;
        r.reliability.spareLinesUsed = st.spareLinesUsed;
        r.reliability.writesBeforeFirstRemap =
            st.badLineRemaps > 0 ? st.writesBeforeFirstRemap
                                 : issued;
        r.reliability.maxLineWear = sys.maxLineWear();
    }
    return r;
}

} // anonymous namespace

int
main()
{
    setQuiet(true);

    const bool quick =
        std::getenv("DRAMLESS_RELIABILITY_QUICK") != nullptr;
    const std::uint64_t bw_writes = quick ? 64 : 256;
    const std::uint64_t lifetime_cap = quick ? 2000 : 20000;

    const double rates[] = {0.0, 0.01, 0.05, 0.1};
    const std::uint64_t periods[] = {4, 16, 64};

    std::vector<Cell> cells;
    for (std::uint64_t period : periods)
        for (double p : rates)
            cells.push_back(Cell{
                p, period,
                runCell(p, period, bw_writes, lifetime_cap)});

    runner::ResultSink sink(
        "ablation_reliability",
        "Write-error rate x Start-Gap period: bandwidth degradation "
        "and lifetime to first bad-line remap");
    sink.label("bw_writes", std::to_string(bw_writes));
    sink.label("lifetime_cap", std::to_string(lifetime_cap));

    runner::ResultMatrix m;
    for (auto &c : cells) {
        char label[64];
        std::snprintf(label, sizeof(label), "p=%g,period=%llu",
                      c.errorRate,
                      (unsigned long long)c.gapPeriod);
        c.result.system = label;
        c.result.workload = "write-hammer";
        m[c.result.system][c.result.workload] = c.result;
    }
    sink.add(m);

    std::printf("Reliability ablation (write hammer, %llu writes "
                "per bandwidth cell)\n\n",
                (unsigned long long)bw_writes);
    std::printf("%-8s %-8s %12s %10s %9s %9s %14s\n", "period",
                "errRate", "bw (MB/s)", "degrade", "retries",
                "remaps", "lifeToRemap");
    for (std::uint64_t period : periods) {
        double base_bw = 0.0;
        for (const auto &c : cells) {
            if (c.gapPeriod != period)
                continue;
            if (c.errorRate == 0.0)
                base_bw = c.result.bandwidthMBps;
            double degrade =
                base_bw > 0.0
                    ? (1.0 - c.result.bandwidthMBps / base_bw) * 100.0
                    : 0.0;
            std::printf(
                "%-8llu %-8g %12.1f %9.1f%% %9llu %9llu %14llu\n",
                (unsigned long long)period, c.errorRate,
                c.result.bandwidthMBps, degrade,
                (unsigned long long)c.result.reliability.verifyRetries,
                (unsigned long long)c.result.reliability.badLineRemaps,
                (unsigned long long)
                    c.result.reliability.writesBeforeFirstRemap);
        }
    }
    std::printf("\nshapes: retries stretch the program phase, so "
                "bandwidth falls as the\nerror rate rises; shorter "
                "gap-move periods spread wear and push the\nfirst "
                "bad-line remap further out (at the cost of extra "
                "gap-move writes).\n");
    sink.exportFromEnv();
    return 0;
}
