/**
 * @file
 * Figure 21: core power and total energy over the first 16 KiB of
 * doitg (write-intensive).
 */

#include "timeseries_common.hh"

int
main()
{
    return dramless::bench::powerFigure("fig21_power_doitg",
                                        "Figure 21", "doitg");
}
