/**
 * @file
 * Figure 21: core power and total energy over the first 16 KiB of
 * doitg (write-intensive).
 */

#include "timeseries_common.hh"

int
main()
{
    return dramless::bench::powerFigure("Figure 21", "doitg");
}
