/**
 * @file
 * Table III: characteristics of the evaluated workloads — the
 * modeled classification plus measured trace statistics (the write
 * intensiveness is output volume over input volume, as in the
 * paper).
 */

#include <cstdio>

#include "harness.hh"
#include "workload/trace_gen.hh"

using namespace dramless;

int
main()
{
    double scale = bench::scaleFromEnv(1.0);
    runner::ResultSink sink(
        "table3_workloads",
        "Table III: characteristics of the evaluated workloads");
    std::printf("Table III: workload characteristics "
                "(volume scale %.2f)\n",
                scale);
    std::printf("%-8s %-18s %-11s %9s %9s %7s %8s\n", "name",
                "class", "pattern", "in(MiB)", "out(MiB)", "out/in",
                "ops/B");
    std::printf("%.*s\n", 76,
                "----------------------------------------"
                "----------------------------------------");
    for (const auto &base : workload::Polybench::all()) {
        auto spec = base.scaled(scale);
        std::printf("%-8s %-18s %-11s %9.2f %9.2f %7.2f %8.1f\n",
                    spec.name.c_str(),
                    workload::Polybench::className(spec.klass),
                    workload::Polybench::patternName(spec.pattern),
                    double(spec.inputBytes) / double(1 << 20),
                    double(spec.outputBytes) / double(1 << 20),
                    double(spec.outputBytes) /
                        double(spec.inputBytes),
                    spec.opsPerByte);
        sink.label(spec.name + "/class",
                   workload::Polybench::className(spec.klass));
        sink.label(spec.name + "/pattern",
                   workload::Polybench::patternName(spec.pattern));
        sink.metric(spec.name + "/input_bytes",
                    double(spec.inputBytes));
        sink.metric(spec.name + "/output_bytes",
                    double(spec.outputBytes));
        sink.metric(spec.name + "/ops_per_byte", spec.opsPerByte);
    }

    // Measured per-trace statistics for one agent slice.
    std::printf("\nmeasured single-agent trace statistics "
                "(of 7 agents):\n");
    std::printf("%-8s %12s %12s %12s %12s\n", "name", "loads",
                "stores", "instrs", "st/ld bytes");
    for (const auto &base : workload::Polybench::all()) {
        workload::TraceGenConfig tc;
        tc.spec = base.scaled(scale * 0.25);
        tc.numAgents = 7;
        workload::PolybenchTraceSource src(tc);
        accel::TraceItem it;
        std::uint64_t loads = 0, stores = 0, instr = 0, lb = 0,
                      sb = 0;
        while (src.next(it)) {
            switch (it.kind) {
              case accel::TraceItem::Kind::load:
                ++loads;
                lb += it.size;
                break;
              case accel::TraceItem::Kind::store:
                ++stores;
                sb += it.size;
                break;
              case accel::TraceItem::Kind::compute:
                instr += it.instructions;
                break;
            }
        }
        std::printf("%-8s %12llu %12llu %12llu %12.3f\n",
                    base.name.c_str(), (unsigned long long)loads,
                    (unsigned long long)stores,
                    (unsigned long long)instr,
                    double(sb) / double(lb));
        sink.metric(base.name + "/trace_loads", double(loads));
        sink.metric(base.name + "/trace_stores", double(stores));
        sink.metric(base.name + "/trace_instructions",
                    double(instr));
    }
    sink.exportFromEnv();
    return 0;
}
