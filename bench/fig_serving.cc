/**
 * @file
 * Request-level serving evaluation: an open-loop Poisson arrival
 * stream of mixed requests (short BFS/SpMV graph queries and DNN
 * inferences plus a long Polybench kernel) served by a fleet of
 * accelerator+PRAM nodes per organization, swept across arrival
 * rates to locate each organization's saturation knee.
 *
 * Two phases. The *probe* phase runs every (organization, workload)
 * pair once on the cycle-level system models (SweepRunner thread
 * pool) to calibrate per-request service times. The *load sweep*
 * then replays seeded request schedules through the serve::Fleet
 * queueing layer at increasing offered load (fractions of the
 * fleet's service capacity), reporting offered load vs. goodput,
 * p50/p99/p999 queueing and end-to-end latency, queue depths,
 * rejections, and the knee — the lowest swept load where the fleet
 * stops completing everything it is offered. Full mode adds a
 * bursty (MMPP) run per organization at mid load to show the tail
 * blow-up average-rate metrics hide.
 *
 * The binary self-checks the physics its figure depends on — p99
 * end-to-end latency must be monotone non-decreasing in offered
 * load, and the top rate must saturate (goodput < offered) — and
 * fails loudly otherwise, so the ctest smoke is a real regression
 * gate.
 *
 * A closing co-sim spot check replays a scaled-down schedule against
 * live cycle-level nodes over a modeled PCIe hop (serve::CoSimFleet
 * on the sharded PDES kernel), honoring DRAMLESS_SHARDS for the
 * worker count — results are bit-identical for every shard count.
 *
 * Environment knobs:
 *   DRAMLESS_SERVING_QUICK  2 orgs x 2 workloads x 3 loads (CI)
 *   DRAMLESS_SERVING_ORGS   comma-separated Table I labels
 *   DRAMLESS_SERVING_POLICY jsq (default) or rr
 *   DRAMLESS_SERVING_NODES  fleet size (default 4)
 *   DRAMLESS_SERVING_REQUESTS requests per load point
 *   DRAMLESS_SERVING_SEED   arrival-schedule seed (default 7)
 *   DRAMLESS_SCALE          workload volume scale (default 0.25)
 *   DRAMLESS_JOBS           probe worker threads
 *   DRAMLESS_SHARDS         co-sim PDES workers (1 = serial)
 *   DRAMLESS_OUT_JSON/CSV   structured export ("-" = stdout)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "harness.hh"
#include "serve/cosim.hh"

using namespace dramless;

namespace
{

struct Setup
{
    bool quick = false;
    std::vector<systems::SystemKind> orgs;
    std::vector<std::shared_ptr<const workload::WorkloadModel>>
        models;
    std::vector<double> mixWeights;
    std::vector<double> loads;
    std::uint64_t requests = 5000;
    std::uint64_t seed = 7;
    serve::FleetConfig fleet;
};

std::uint64_t
u64FromEnv(const char *name, std::uint64_t fallback)
{
    const char *env = std::getenv(name);
    if (env == nullptr)
        return fallback;
    char *end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0' || v == 0) {
        warn("ignoring %s='%s' (not a positive integer)", name, env);
        return fallback;
    }
    return v;
}

std::vector<systems::SystemKind>
orgsFromEnv(bool quick)
{
    std::vector<systems::SystemKind> orgs;
    if (const char *env = std::getenv("DRAMLESS_SERVING_ORGS")) {
        std::string s(env);
        std::size_t pos = 0;
        while (pos <= s.size()) {
            std::size_t comma = s.find(',', pos);
            std::string label =
                s.substr(pos, comma == std::string::npos
                                  ? std::string::npos
                                  : comma - pos);
            auto kind = systems::SystemFactory::fromLabel(label);
            fatal_if(!kind.has_value(),
                     "DRAMLESS_SERVING_ORGS names unknown "
                     "organization '%s'",
                     label.c_str());
            orgs.push_back(*kind);
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
        fatal_if(orgs.empty(), "DRAMLESS_SERVING_ORGS is empty");
        return orgs;
    }
    if (quick) {
        return {systems::SystemKind::hetero,
                systems::SystemKind::dramLess};
    }
    return {systems::SystemKind::hetero,
            systems::SystemKind::heterodirect,
            systems::SystemKind::integratedSlc,
            systems::SystemKind::dramLess};
}

Setup
setupFromEnv()
{
    Setup s;
    s.quick = std::getenv("DRAMLESS_SERVING_QUICK") != nullptr;
    s.orgs = orgsFromEnv(s.quick);
    s.seed = u64FromEnv("DRAMLESS_SERVING_SEED", 7);
    s.requests =
        u64FromEnv("DRAMLESS_SERVING_REQUESTS", s.quick ? 2000 : 5000);
    s.fleet.numNodes =
        std::uint32_t(u64FromEnv("DRAMLESS_SERVING_NODES", 4));
    s.fleet.queueCapacity = 16;
    s.fleet.policy = serve::DispatchPolicy::joinShortestQueue;
    if (const char *p = std::getenv("DRAMLESS_SERVING_POLICY")) {
        if (std::strcmp(p, "rr") == 0)
            s.fleet.policy = serve::DispatchPolicy::roundRobin;
        else
            fatal_if(std::strcmp(p, "jsq") != 0,
                     "DRAMLESS_SERVING_POLICY must be jsq or rr");
    }

    // The request mix: mostly short graph queries and DNN inferences
    // with a tail of long Polybench kernel launches (the mixed
    // short/long stream the graph-accelerator access-pattern
    // literature argues is the realistic serving shape; inference is
    // the ROADMAP's "requests become inferences" serving traffic).
    auto graphQuery = [&](workload::GraphKernel kernel) {
        workload::GraphWorkloadConfig cfg;
        cfg.kernel = kernel;
        cfg.graph.numVertices = s.quick ? 4096 : 8192;
        cfg.graph.edgeFactor = 8.0;
        cfg.iterations = 1;
        return std::make_shared<workload::GraphWorkload>(cfg);
    };
    s.models.push_back(graphQuery(workload::GraphKernel::bfs));
    if (s.quick) {
        s.models.push_back(workload::dnnModelFor("mlp", 1));
        s.models.push_back(
            workload::modelFor(workload::Polybench::byName("gemver")));
        s.mixWeights = {0.55, 0.25, 0.2};
        s.loads = {0.25, 0.8, 1.6};
    } else {
        s.models.push_back(graphQuery(workload::GraphKernel::spmv));
        s.models.push_back(workload::dnnModelFor("mlp", 1));
        s.models.push_back(workload::dnnModelFor("lenet", 1));
        s.models.push_back(
            workload::modelFor(workload::Polybench::byName("gemver")));
        s.mixWeights = {0.4, 0.2, 0.15, 0.1, 0.15};
        s.loads = {0.2, 0.5, 0.8, 1.1, 1.5};
    }
    return s;
}

} // anonymous namespace

int
main()
{
    auto opts = bench::defaultOptions();
    Setup s = setupFromEnv();

    // ------------------- probe: calibrate service times ------------
    auto jobs = runner::makeMatrixJobs(s.orgs, s.models, opts);
    runner::SweepRunner pool(runner::jobsFromEnv());
    std::printf("serving sweep: %zu orgs x %zu workloads probe, "
                "%zu loads x %llu requests, %u node%s/org, policy "
                "%s, %u worker%s, scale %.2f\n\n",
                s.orgs.size(), s.models.size(), s.loads.size(),
                (unsigned long long)s.requests, s.fleet.numNodes,
                s.fleet.numNodes == 1 ? "" : "s",
                serve::dispatchPolicyName(s.fleet.policy),
                pool.numWorkers(), pool.numWorkers() == 1 ? "" : "s",
                opts.workloadScale);
    std::vector<systems::RunResult> probe =
        pool.run(jobs, runner::stderrProgress());

    serve::ServingSink sink(
        "fig_serving",
        "Open-loop load sweep: offered load vs goodput and tail "
        "latency per organization, with the saturation knee");
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%g", opts.workloadScale);
        sink.label("workload_scale", buf);
        sink.label("policy",
                   serve::dispatchPolicyName(s.fleet.policy));
        std::snprintf(buf, sizeof(buf), "%llu",
                      (unsigned long long)s.seed);
        sink.label("seed", buf);
    }

    // --------------------------- load sweep -------------------------
    std::vector<std::string> orgLabels;
    std::vector<double> knees;
    for (std::size_t o = 0; o < s.orgs.size(); ++o) {
        const char *label =
            systems::SystemFactory::label(s.orgs[o]);
        orgLabels.push_back(label);

        std::vector<Tick> serviceTicks;
        double weightedServiceSec = 0.0, weightSum = 0.0;
        for (std::size_t m = 0; m < s.models.size(); ++m) {
            const auto &r = probe[o * s.models.size() + m];
            fatal_if(r.failed() || r.execTime == 0,
                     "probe run %s/%s produced no service time",
                     r.system.c_str(), r.workload.c_str());
            serviceTicks.push_back(r.execTime);
            weightedServiceSec +=
                s.mixWeights[m] * toSec(r.execTime);
            weightSum += s.mixWeights[m];
        }
        weightedServiceSec /= weightSum;
        // One node completes 1/meanService requests per second, so
        // load L offers L * numNodes / meanService.
        double capacityRps =
            double(s.fleet.numNodes) / weightedServiceSec;

        serve::Fleet fleet(s.fleet, serviceTicks);
        double prevP99 = 0.0;
        double knee = 0.0;
        std::printf("%-22s", label);
        for (double load : s.loads) {
            serve::ArrivalConfig acfg;
            acfg.ratePerSec = load * capacityRps;
            acfg.numRequests = s.requests;
            acfg.seed = s.seed;
            acfg.mixWeights = s.mixWeights;
            serve::PoissonArrivals arrivals(acfg);

            serve::ServingResult res =
                fleet.run(arrivals.generate());
            res.system = label;
            res.arrival = csprintf("poisson/load=%.2f", load);

            // Physics gates: latency must not improve as offered
            // load grows (same seed, heavier traffic).
            fatal_if(res.p99E2eUs + 1e-9 < prevP99,
                     "%s: p99 e2e latency decreased from %.1fus to "
                     "%.1fus when load rose to %.2f",
                     label, prevP99, res.p99E2eUs, load);
            prevP99 = res.p99E2eUs;
            if (knee == 0.0 && res.completionRatio() < 0.999)
                knee = load;

            sink.metric(
                csprintf("p99_e2e_us/%s/load_%.2f", label, load),
                res.p99E2eUs);
            sink.metric(
                csprintf("goodput_ratio/%s/load_%.2f", label, load),
                res.completionRatio());
            sink.add(res);
            std::printf("  L%.2f p99 %8.2fms good %5.1f%%", load,
                        res.p99E2eUs / 1e3,
                        res.completionRatio() * 100.0);

            // The top rate must be past saturation: the fleet
            // rejects work and goodput falls short of offered load.
            if (load == s.loads.back()) {
                fatal_if(res.rejected == 0 ||
                             res.goodputPerSec >=
                                 res.offeredRatePerSec,
                         "%s: top load %.2f did not saturate "
                         "(rejected %llu, goodput %.1f/s vs "
                         "offered %.1f/s)",
                         label, load,
                         (unsigned long long)res.rejected,
                         res.goodputPerSec, res.offeredRatePerSec);
            }
        }
        std::printf("\n");
        if (knee > 0.0) {
            sink.metric(csprintf("knee_load/%s", label), knee);
            knees.push_back(knee);
        }

        // Bursty traffic at mid load: same mean rate, MMPP
        // modulation — the tail the Poisson average hides.
        if (!s.quick) {
            serve::ArrivalConfig acfg;
            double midLoad = s.loads[s.loads.size() / 2];
            acfg.ratePerSec = midLoad * capacityRps;
            acfg.numRequests = s.requests;
            acfg.seed = s.seed;
            acfg.mixWeights = s.mixWeights;
            serve::MmppArrivals::Burst burst;
            burst.burstMultiplier = 6.0;
            burst.meanQuietSec = 40.0 * weightedServiceSec;
            burst.meanBurstSec = 10.0 * weightedServiceSec;
            serve::MmppArrivals mmpp(acfg, burst);
            serve::ServingResult res = fleet.run(mmpp.generate());
            res.system = label;
            res.arrival = csprintf("mmpp/load=%.2f", midLoad);
            sink.metric(csprintf("p99_e2e_us_mmpp/%s", label),
                        res.p99E2eUs);
            sink.add(res);
        }
    }

    // Summary knee geomean. An oversaturated sweep can locate no
    // knee for any organization (or, degenerately, every request
    // can be rejected) — report 0 with an explicit flag instead of
    // crashing on an empty geomean.
    sink.metric("orgs_with_knee", double(knees.size()));
    sink.metric("knee_load_gm",
                knees.empty() ? 0.0 : stats::geomean(knees));
    if (!knees.empty()) {
        std::printf("\nsaturation knee (load factor), geomean over "
                    "%zu orgs: %.2f\n",
                    knees.size(), stats::geomean(knees));
    }

    // ---------------- co-sim spot check (sharded kernel) -----------
    // The load sweep above abstracts each node as a calibrated
    // service-time table. The co-simulated fleet replays a seeded
    // schedule of the same request mix (volume-scaled so each launch
    // costs microseconds) against live cycle-level nodes behind a
    // modeled PCIe hop, partitioned one-cluster-per-node on the
    // conservative sharded event kernel. DRAMLESS_SHARDS picks the
    // worker count; every value is bit-identical to the serial
    // reference, so this doubles as a smoke of the PDES path under
    // whatever shard count CI exports.
    {
        unsigned shards = runner::shardsFromEnv();
        serve::CoSimConfig ccfg;
        ccfg.fleet = s.fleet;
        ccfg.fleet.numNodes = std::min(s.fleet.numNodes, 4u);
        ccfg.node = opts;
        ccfg.node.shards = shards;
        std::vector<std::shared_ptr<const workload::WorkloadModel>>
            cmix;
        for (const auto &m : s.models)
            cmix.push_back(m->scaled(s.quick ? 0.002 : 0.005));

        serve::ArrivalConfig acfg;
        acfg.numRequests = s.quick ? 48 : 192;
        acfg.ratePerSec = 30000.0;
        acfg.seed = s.seed;
        acfg.mixWeights = s.mixWeights;
        serve::CoSimFleet cofleet(ccfg, cmix);
        serve::ServingResult res =
            cofleet.run(serve::PoissonArrivals(acfg).generate());
        res.system = "cosim";
        res.arrival = "poisson/cosim";
        fatal_if(res.completed == 0,
                 "co-sim fleet completed no requests");

        const pdes::KernelStats &ks = cofleet.kernelStats();
        std::printf("\nco-sim spot check (%u node%s, %u shard%s): "
                    "%llu/%llu completed, p99 e2e %.1fus, "
                    "%llu windows / %llu messages\n",
                    ccfg.fleet.numNodes,
                    ccfg.fleet.numNodes == 1 ? "" : "s", shards,
                    shards == 1 ? "" : "s",
                    (unsigned long long)res.completed,
                    (unsigned long long)res.offered, res.p99E2eUs,
                    (unsigned long long)ks.windows,
                    (unsigned long long)ks.messages);
        // The shard count is deliberately NOT exported: results are
        // bit-identical for every value, and the determinism pair in
        // bench/CMakeLists.txt byte-compares exports made with
        // different DRAMLESS_SHARDS to prove it.
        sink.metric("cosim_p99_e2e_us", res.p99E2eUs);
        sink.metric("cosim_goodput_ratio", res.completionRatio());
        sink.metric("cosim_kernel_windows", double(ks.windows));
        sink.metric("cosim_kernel_messages", double(ks.messages));
        sink.add(res);
    }

    sink.exportFromEnv();
    return 0;
}
