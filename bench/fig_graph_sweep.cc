/**
 * @file
 * Graph-analytics evaluation driver: runs every Table I organization
 * over the three graph kernels (BFS, PageRank, SpMV) across a
 * vertex-count x edge-factor grid, plus a volume-matched streaming
 * Polybench-style comparator, on the SweepRunner thread pool.
 *
 * The headline metric is the accelerated-vs-baseline gap
 * (DRAM-less bandwidth / Hetero bandwidth) on the graph kernels
 * versus the same gap on the matched streaming workload: irregular,
 * data-dependent access is where eliminating the chunked
 * host-shepherded pipeline should pay the most.
 *
 * Environment knobs:
 *   DRAMLESS_GRAPH_QUICK  shrink the grid to one small point (CI)
 *   DRAMLESS_SCALE        workload volume scale (default 0.25)
 *   DRAMLESS_JOBS         worker threads (default: hardware threads)
 *   DRAMLESS_OUT_JSON     write the full result set as JSON ("-"=stdout)
 *   DRAMLESS_OUT_CSV      write the per-run scalar table as CSV
 */

#include <cstdio>
#include <cstdlib>

#include "harness.hh"

using namespace dramless;

namespace
{

/** The evaluated grid: kernels x vertex counts x edge factors. */
struct Grid
{
    std::vector<std::uint64_t> vertices;
    std::vector<double> edgeFactors;
};

Grid
gridFromEnv()
{
    if (std::getenv("DRAMLESS_GRAPH_QUICK"))
        return {{16384}, {8.0}};
    return {{16384, 32768}, {8.0, 16.0}};
}

} // anonymous namespace

int
main()
{
    auto opts = bench::defaultOptions();
    Grid grid = gridFromEnv();
    const std::vector<workload::GraphKernel> kernels = {
        workload::GraphKernel::bfs,
        workload::GraphKernel::pagerank,
        workload::GraphKernel::spmv,
    };

    // ---------------------- workload models ------------------------
    std::vector<std::shared_ptr<const workload::WorkloadModel>>
        models;
    std::vector<std::string> graphNames;
    for (workload::GraphKernel kernel : kernels) {
        for (std::uint64_t v : grid.vertices) {
            for (double ef : grid.edgeFactors) {
                workload::GraphWorkloadConfig cfg;
                cfg.kernel = kernel;
                cfg.graph.numVertices = v;
                cfg.graph.edgeFactor = ef;
                cfg.iterations =
                    kernel == workload::GraphKernel::pagerank ? 2 : 1;
                models.push_back(
                    std::make_shared<workload::GraphWorkload>(cfg));
                graphNames.push_back(models.back()->spec().name);
            }
        }
    }

    // Volume-matched streaming comparator: same bytes and compute
    // intensity as the first BFS grid point, but a regular streaming
    // sweep — the access pattern is the only difference.
    workload::WorkloadSpec stream;
    stream.name = "stream_matched";
    stream.pattern = workload::Pattern::streaming;
    stream.klass = workload::WorkloadClass::memoryIntensive;
    stream.inputBytes = models.front()->spec().inputBytes;
    stream.outputBytes = models.front()->spec().outputBytes;
    stream.opsPerByte = models.front()->spec().opsPerByte;
    models.push_back(workload::modelFor(stream));

    auto kinds = systems::SystemFactory::evaluationOrder();
    auto jobs = runner::makeMatrixJobs(kinds, models, opts);
    runner::SweepRunner pool(runner::jobsFromEnv());
    std::printf("graph sweep: %zu runs (%zu systems x %zu workloads),"
                " %u worker%s, scale %.2f\n\n",
                jobs.size(), kinds.size(), models.size(),
                pool.numWorkers(), pool.numWorkers() == 1 ? "" : "s",
                opts.workloadScale);

    std::vector<systems::RunResult> results =
        pool.run(jobs, runner::stderrProgress());

    auto sink = bench::makeSink(
        "fig_graph_sweep",
        "Graph kernels (BFS/PageRank/SpMV) across all organizations",
        opts);
    for (const auto &r : results)
        sink.add(r);
    runner::ResultMatrix m = sink.matrix();

    // --------------------------- tables ----------------------------
    std::vector<std::string> cols = graphNames;
    cols.push_back(stream.name);
    bench::printHeader("bandwidth vs Hetero", cols, 16);
    const auto &hetero = m.at("Hetero");
    for (auto kind : kinds) {
        const char *label = systems::SystemFactory::label(kind);
        const auto &row = m.at(label);
        std::printf("%-22s", label);
        for (const auto &name : cols) {
            std::printf("%16.2f", row.at(name).bandwidthMBps /
                                      hetero.at(name).bandwidthMBps);
        }
        std::printf("\n");
    }

    // ------------------------ gap metrics --------------------------
    // The accelerated-vs-baseline gap per workload, and the headline
    // ratio of the graph-kernel gap to the matched streaming gap.
    const auto &dless = m.at("DRAM-less");
    std::vector<double> graph_gaps;
    for (const auto &name : graphNames) {
        double gap = dless.at(name).bandwidthMBps /
                     hetero.at(name).bandwidthMBps;
        graph_gaps.push_back(gap);
        sink.metric("gap_vs_hetero/" + name, gap);
    }
    double stream_gap = dless.at(stream.name).bandwidthMBps /
                        hetero.at(stream.name).bandwidthMBps;
    sink.metric("gap_vs_hetero/" + stream.name, stream_gap);
    double graph_gap_gm = stats::geomean(graph_gaps);
    sink.metric("graph_gap_gm", graph_gap_gm);
    sink.metric("graph_vs_stream_gap_ratio",
                graph_gap_gm / stream_gap);
    std::printf("\nDRAM-less vs Hetero gap: graph gm %.2fx, "
                "matched stream %.2fx (ratio %.2f)\n",
                graph_gap_gm, stream_gap, graph_gap_gm / stream_gap);

    sink.exportFromEnv();
    return 0;
}
