/**
 * @file
 * DNN inference evaluation driver: runs every Table I organization
 * over the named networks (LeNet-style CNN, MLP, transformer FFN
 * stack) across a batch-size axis, plus a volume-matched streaming
 * comparator, on the SweepRunner thread pool.
 *
 * The headline metric is the accelerated-vs-baseline gap (DRAM-less
 * bandwidth / Hetero bandwidth) on inference versus the same gap on
 * the matched streaming workload: weight streaming is regular, but
 * the tiled re-sweeps of the activation buffers and the chunked
 * restaging penalty on the hetero pipeline are where the DRAM-less
 * path should pay off.
 *
 * Environment knobs:
 *   DRAMLESS_DNN_QUICK    batch {1} only (CI smoke)
 *   DRAMLESS_DNN_NETS     comma list of networks (default lenet,mlp,ffn)
 *   DRAMLESS_DNN_BATCHES  comma list of batch sizes (default 1,4)
 *   DRAMLESS_SCALE        workload volume scale (default 0.25)
 *   DRAMLESS_JOBS         worker threads (default: hardware threads)
 *   DRAMLESS_OUT_JSON     write the full result set as JSON ("-"=stdout)
 *   DRAMLESS_OUT_CSV      write the per-run scalar table as CSV
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "harness.hh"

using namespace dramless;

namespace
{

std::vector<std::string>
splitList(const char *env, std::vector<std::string> fallback)
{
    if (env == nullptr)
        return fallback;
    std::vector<std::string> out;
    std::stringstream ss(env);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out.empty() ? fallback : out;
}

} // anonymous namespace

int
main()
{
    auto opts = bench::defaultOptions();
    const bool quick = std::getenv("DRAMLESS_DNN_QUICK") != nullptr;
    std::vector<std::string> nets = splitList(
        std::getenv("DRAMLESS_DNN_NETS"), {"lenet", "mlp", "ffn"});
    std::vector<std::string> batches = splitList(
        std::getenv("DRAMLESS_DNN_BATCHES"),
        quick ? std::vector<std::string>{"1"}
              : std::vector<std::string>{"1", "4"});

    // ---------------------- workload models ------------------------
    std::vector<std::shared_ptr<const workload::WorkloadModel>>
        models;
    std::vector<std::string> dnnNames;
    for (const std::string &net : nets) {
        for (const std::string &b : batches) {
            std::uint32_t batch =
                std::uint32_t(std::strtoul(b.c_str(), nullptr, 10));
            fatal_if(batch == 0, "bad DRAMLESS_DNN_BATCHES entry "
                     "'%s'", b.c_str());
            models.push_back(workload::dnnModelFor(net, batch));
            dnnNames.push_back(models.back()->spec().name);
        }
    }

    // Volume-matched streaming comparator: same bytes and compute
    // intensity as the first network, but a regular streaming sweep
    // — the tiled access schedule is the only difference.
    workload::WorkloadSpec stream;
    stream.name = "stream_matched";
    stream.pattern = workload::Pattern::streaming;
    stream.klass = workload::WorkloadClass::memoryIntensive;
    stream.inputBytes = models.front()->spec().inputBytes;
    stream.outputBytes = models.front()->spec().outputBytes;
    stream.opsPerByte = models.front()->spec().opsPerByte;
    models.push_back(workload::modelFor(stream));

    auto kinds = systems::SystemFactory::evaluationOrder();
    auto jobs = runner::makeMatrixJobs(kinds, models, opts);
    runner::SweepRunner pool(runner::jobsFromEnv());
    std::printf("dnn sweep: %zu runs (%zu systems x %zu workloads),"
                " %u worker%s, scale %.2f\n\n",
                jobs.size(), kinds.size(), models.size(),
                pool.numWorkers(), pool.numWorkers() == 1 ? "" : "s",
                opts.workloadScale);

    std::vector<systems::RunResult> results =
        pool.run(jobs, runner::stderrProgress());

    auto sink = bench::makeSink(
        "fig_dnn_sweep",
        "DNN inference (lenet/mlp/ffn) across all organizations",
        opts);
    for (const auto &r : results)
        sink.add(r);
    runner::ResultMatrix m = sink.matrix();

    // --------------------------- tables ----------------------------
    std::vector<std::string> cols = dnnNames;
    cols.push_back(stream.name);
    bench::printHeader("bandwidth vs Hetero", cols, 16);
    const auto &hetero = m.at("Hetero");
    for (auto kind : kinds) {
        const char *label = systems::SystemFactory::label(kind);
        const auto &row = m.at(label);
        std::printf("%-22s", label);
        for (const auto &name : cols) {
            std::printf("%16.2f", row.at(name).bandwidthMBps /
                                      hetero.at(name).bandwidthMBps);
        }
        std::printf("\n");
    }

    // ------------------------ gap metrics --------------------------
    // The accelerated-vs-baseline gap per network/batch, and the
    // headline ratio of the inference gap to the matched streaming
    // gap.
    const auto &dless = m.at("DRAM-less");
    std::vector<double> dnn_gaps;
    for (const auto &name : dnnNames) {
        double gap = dless.at(name).bandwidthMBps /
                     hetero.at(name).bandwidthMBps;
        dnn_gaps.push_back(gap);
        sink.metric("gap_vs_hetero/" + name, gap);
    }
    double stream_gap = dless.at(stream.name).bandwidthMBps /
                        hetero.at(stream.name).bandwidthMBps;
    sink.metric("gap_vs_hetero/" + stream.name, stream_gap);
    double dnn_gap_gm = stats::geomean(dnn_gaps);
    sink.metric("dnn_gap_gm", dnn_gap_gm);
    sink.metric("dnn_vs_stream_gap_ratio", dnn_gap_gm / stream_gap);
    std::printf("\nDRAM-less vs Hetero gap: dnn gm %.2fx, "
                "matched stream %.2fx (ratio %.2f)\n",
                dnn_gap_gm, stream_gap, dnn_gap_gm / stream_gap);

    sink.exportFromEnv();
    return 0;
}
