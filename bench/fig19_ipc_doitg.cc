/**
 * @file
 * Figure 19: total-IPC time series under the write-intensive doitg.
 */

#include "timeseries_common.hh"

int
main()
{
    return dramless::bench::ipcFigure("fig19_ipc_doitg",
                                      "Figure 19", "doitg");
}
