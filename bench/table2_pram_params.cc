/**
 * @file
 * Table II: characterized PRAM parameters, printed from the live
 * model configuration so the table always reflects what the
 * simulator actually uses.
 */

#include <cstdio>

#include "pram/geometry.hh"
#include "pram/timing.hh"
#include "runner/result_sink.hh"
#include "sim/ticks.hh"

using namespace dramless;

int
main()
{
    pram::PramTiming t = pram::PramTiming::paperDefault();
    pram::PramGeometry g = pram::PramGeometry::paperDefault();

    std::printf("Table II: characterized PRAM parameters\n");
    std::printf("%-18s %-14s   %-18s %-14s\n", "parameter", "value",
                "parameter", "value");
    std::printf("%.*s\n", 68,
                "----------------------------------------"
                "----------------------------------------");
    std::printf("%-18s %-14llu   %-18s %-14.1f\n", "RL (cycles)",
                (unsigned long long)t.rl, "tRCD (ns)", toNs(t.tRCD));
    std::printf("%-18s %-14llu   %-18s %-14.1f\n", "WL (cycles)",
                (unsigned long long)t.wl, "tDQSCK (ns)",
                toNs(t.tDQSCK));
    std::printf("%-18s %-14.1f   %-18s %-14.1f\n", "tCK (ns)",
                toNs(t.tCK), "tDQSS (ns)", toNs(t.tDQSS));
    std::printf("%-18s %-14llu   %-18s %-14.1f\n", "tRP (cycles)",
                (unsigned long long)t.tRP, "tWRA (ns)", toNs(t.tWRA));
    std::printf("%-18s %-14s   %-18s %-14s\n", "tBURST (cycles)",
                "4/8/16", "RDB", "32B, 4 RDBs");
    std::printf("%-18s %-14u   %-18s %-14s\n", "RAB",
                g.numRowBuffers, "PRAM write (us)", "10-18");
    std::printf("%-18s %-14u   %-18s %-14u\n", "Channels", 2u,
                "Partitions", g.partitionsPerBank);
    std::printf("%-18s %-14u   %-18s %-14.0f\n", "Packages", 16u,
                "Erase (ms)", toMs(t.eraseLatency));
    std::printf("\nderived:\n");
    Tick read_total = t.preActiveTime() + t.tRCD +
                      t.readPreamble() +
                      t.burstTime(pram::BurstLength::BL16);
    std::printf("  full three-phase 32B read : %.1f ns "
                "(paper: ~100 ns)\n",
                toNs(read_total));
    std::printf("  pristine program / overwrite : %.0f / %.0f us\n",
                toUs(t.cellProgram), toUs(t.cellOverwrite));
    std::printf("  module capacity           : %.1f GiB"
                " (%u partitions x %u tiles x 2048 BL x 4096 WL)\n",
                double(g.moduleBytes()) / double(1ull << 30),
                g.partitionsPerBank, g.tilesPerPartition);

    runner::ResultSink sink("table2_pram_params",
                            "Table II: characterized PRAM parameters");
    sink.metric("rl_cycles", double(t.rl));
    sink.metric("wl_cycles", double(t.wl));
    sink.metric("tck_ns", toNs(t.tCK));
    sink.metric("trcd_ns", toNs(t.tRCD));
    sink.metric("trp_cycles", double(t.tRP));
    sink.metric("tdqsck_ns", toNs(t.tDQSCK));
    sink.metric("tdqss_ns", toNs(t.tDQSS));
    sink.metric("twra_ns", toNs(t.tWRA));
    sink.metric("erase_ms", toMs(t.eraseLatency));
    sink.metric("row_buffers", double(g.numRowBuffers));
    sink.metric("partitions_per_bank", double(g.partitionsPerBank));
    sink.metric("tiles_per_partition", double(g.tilesPerPartition));
    sink.metric("program_slots", double(g.programSlots));
    sink.metric("read_32b_ns", toNs(read_total));
    sink.metric("cell_program_us", toUs(t.cellProgram));
    sink.metric("cell_overwrite_us", toUs(t.cellOverwrite));
    sink.metric("module_gib",
                double(g.moduleBytes()) / double(1ull << 30));
    sink.exportFromEnv();
    return 0;
}
