/**
 * @file
 * Figure 16: execution-time decomposition of every system — host
 * software stack, PCIe transfer, storage stalls, computation — as
 * fractions of end-to-end time, averaged over Polybench and shown
 * per workload for the extremes.
 */

#include <cstdio>

#include "harness.hh"

using namespace dramless;

namespace
{

struct Fractions
{
    double host = 0, pcie = 0, storage = 0, compute = 0;
};

Fractions
fractionsOf(const systems::RunResult &r)
{
    double t = double(r.execTime);
    return {double(r.hostStackTime) / t, double(r.transferTime) / t,
            double(r.storageStallTime) / t,
            double(r.computeTime) / t};
}

} // anonymous namespace

int
main()
{
    auto opts = bench::defaultOptions();
    std::printf("Figure 16: execution time decomposition "
                "(scale %.2f)\n\n",
                opts.workloadScale);

    auto kinds = systems::SystemFactory::evaluationOrder();
    bench::ResultMatrix m = bench::runMatrix(kinds, opts);

    auto sink = bench::makeSink(
        "fig16_exec_time",
        "Figure 16: execution time decomposition", opts);
    sink.add(m);

    std::printf("averaged over the suite (%% of execution time):\n");
    std::printf("%-22s %8s %8s %8s %8s %12s\n", "system", "host",
                "PCIe", "storage", "compute", "exec ms (gm)");
    std::printf("%.*s\n", 72,
                "--------------------------------------------------"
                "----------------------");
    for (auto kind : kinds) {
        const char *label = systems::SystemFactory::label(kind);
        Fractions sum;
        std::vector<double> exec_ms;
        for (const auto &spec : workload::Polybench::all()) {
            Fractions f = fractionsOf(m.at(label).at(spec.name));
            sum.host += f.host;
            sum.pcie += f.pcie;
            sum.storage += f.storage;
            sum.compute += f.compute;
            exec_ms.push_back(
                toMs(m.at(label).at(spec.name).execTime));
        }
        double n = double(workload::Polybench::all().size());
        std::printf("%-22s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %12.2f\n",
                    label, 100 * sum.host / n, 100 * sum.pcie / n,
                    100 * sum.storage / n, 100 * sum.compute / n,
                    stats::geomean(exec_ms));
        sink.metric(std::string(label) + "/exec_ms_geomean",
                    stats::geomean(exec_ms));
        sink.metric(std::string(label) + "/host_fraction",
                    sum.host / n);
        sink.metric(std::string(label) + "/storage_fraction",
                    sum.storage / n);
    }

    std::printf("\nper-workload decomposition for a write-heavy "
                "kernel (doitg), in ms:\n");
    std::printf("%-22s %8s %8s %8s %8s %8s\n", "system", "host",
                "PCIe", "storage", "compute", "total");
    for (auto kind : kinds) {
        const char *label = systems::SystemFactory::label(kind);
        const auto &r = m.at(label).at("doitg");
        std::printf("%-22s %8.2f %8.2f %8.2f %8.2f %8.2f\n", label,
                    toMs(r.hostStackTime), toMs(r.transferTime),
                    toMs(r.storageStallTime), toMs(r.computeTime),
                    toMs(r.execTime));
    }
    std::printf("\npaper shapes: Heterodirect trims up to 16%% off "
                "Hetero; Integrated-* spend more\ncycles on flash "
                "than on computation; DRAM-less cuts storage time "
                "~51%% vs Integrated-SLC.\n");
    sink.exportFromEnv();
    return 0;
}
