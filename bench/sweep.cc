/**
 * @file
 * One-shot evaluation driver: runs the full (system x workload)
 * matrix behind Figures 15-17 — the ten evaluated organizations of
 * Table I plus the firmware-managed variant, across all of Polybench
 * — on the SweepRunner thread pool, prints a bandwidth summary, and
 * exports the complete result set.
 *
 * Environment knobs:
 *   DRAMLESS_SCALE     workload volume scale (default 0.25)
 *   DRAMLESS_JOBS      worker threads (default: hardware threads)
 *   DRAMLESS_OUT_JSON  write the full result set as JSON ("-"=stdout)
 *   DRAMLESS_OUT_CSV   write the per-run scalar table as CSV
 */

#include <cstdio>

#include "harness.hh"

using namespace dramless;

int
main()
{
    auto opts = bench::defaultOptions();
    auto kinds = systems::SystemFactory::evaluationOrder();
    kinds.push_back(systems::SystemKind::dramLessFirmware);

    auto jobs = runner::makeMatrixJobs(
        kinds, workload::Polybench::all(), opts);
    runner::SweepRunner pool(runner::jobsFromEnv());
    std::printf("sweep: %zu runs (%zu systems x %zu workloads), "
                "%u worker%s, scale %.2f\n\n",
                jobs.size(), kinds.size(),
                workload::Polybench::all().size(), pool.numWorkers(),
                pool.numWorkers() == 1 ? "" : "s",
                opts.workloadScale);

    std::vector<systems::RunResult> results =
        pool.run(jobs, runner::stderrProgress());

    auto sink = bench::makeSink(
        "sweep", "Full evaluation matrix (Figures 15-17)", opts);
    for (const auto &r : results)
        sink.add(r);
    runner::ResultMatrix m = sink.matrix();

    const auto &hetero = m.at("Hetero");
    bench::printHeader("bandwidth vs Hetero", bench::workloadColumns(),
                       8);
    for (auto kind : kinds) {
        const char *label = systems::SystemFactory::label(kind);
        const auto &row = m.at(label);
        std::vector<double> norm;
        std::printf("%-22s", label);
        for (const auto &spec : workload::Polybench::all()) {
            double v = row.at(spec.name).bandwidthMBps /
                       hetero.at(spec.name).bandwidthMBps;
            norm.push_back(v);
            std::printf("%8.2f", v);
        }
        double gm = stats::geomean(norm);
        std::printf("  | gm %.2f\n", gm);
        sink.metric(std::string(label) + "/gm_bandwidth_vs_hetero",
                    gm);
    }

    std::printf("\nsuite geomean exec ms / total energy mJ:\n");
    for (auto kind : kinds) {
        const char *label = systems::SystemFactory::label(kind);
        std::vector<double> exec_ms;
        double energy = 0.0;
        for (const auto &spec : workload::Polybench::all()) {
            exec_ms.push_back(toMs(m.at(label).at(spec.name).execTime));
            energy += m.at(label).at(spec.name).energy.total();
        }
        std::printf("  %-22s %10.2f %12.1f\n", label,
                    stats::geomean(exec_ms), energy * 1e3);
        sink.metric(std::string(label) + "/gm_exec_ms",
                    stats::geomean(exec_ms));
        sink.metric(std::string(label) + "/suite_energy_j", energy);
    }

    sink.exportFromEnv();
    return 0;
}
