/**
 * @file
 * Figure 20: core power and total energy over the first 16 KiB of
 * gemver (read-intensive).
 */

#include "timeseries_common.hh"

int
main()
{
    return dramless::bench::powerFigure("fig20_power_gemver",
                                        "Figure 20", "gemver");
}
