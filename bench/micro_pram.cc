/**
 * @file
 * PRAM device micro-benchmarks (google-benchmark): raw module
 * operation latencies driven through the LPDDR2-NVM protocol, plus
 * simulator event throughput. Counters carry the *simulated*
 * latencies (Table II checks).
 */

#include <benchmark/benchmark.h>

#include <array>

#include "pram/pram_module.hh"

using namespace dramless;
using namespace dramless::pram;

namespace
{

struct Device
{
    EventQueue eq;
    PramModule mod;

    Device()
        : mod(eq, PramGeometry::paperDefault(),
              PramTiming::paperDefault(), "mod",
              /*functional=*/false)
    {
        setQuiet(true);
    }

    Tick
    fullRead(std::uint64_t addr)
    {
        Tick start = eq.curTick();
        DecomposedAddress d = mod.decomposer().decompose(addr);
        eq.runUntil(mod.preActive(0, d.upperRow, d.partition));
        eq.runUntil(mod.activate(0, d.lowerRow));
        BurstTiming bt = mod.readBurst(0, 0, 32);
        eq.runUntil(bt.lastData);
        return eq.curTick() - start;
    }

    Tick
    programWord(std::uint64_t word, const std::uint8_t *data)
    {
        Tick start = eq.curTick();
        auto ow_write = [&](std::uint32_t off, const void *src,
                            std::uint32_t len) {
            std::uint64_t a = mod.overlayWindow().base() + off;
            DecomposedAddress d = mod.decomposer().decompose(a);
            eq.runUntil(mod.preActive(0, d.upperRow, d.partition));
            eq.runUntil(mod.activate(0, d.lowerRow));
            BurstTiming bt = mod.writeBurst(0, d.column, len, src);
            eq.runUntil(bt.lastData + mod.timing().tWRA);
        };
        std::uint32_t code = ow::cmdBufferProgram;
        ow_write(ow::codeReg, &code, 4);
        std::uint32_t w32 = std::uint32_t(word);
        ow_write(ow::addressReg, &w32, 4);
        std::uint32_t n = 32;
        ow_write(ow::multiPurposeReg, &n, 4);
        ow_write(ow::programBufferBase, data, 32);
        std::uint32_t go = 1;
        ow_write(ow::executeReg, &go, 4);
        eq.runUntil(mod.programBusyUntil());
        return eq.curTick() - start;
    }
};

} // anonymous namespace

static void
BM_ThreePhaseRead(benchmark::State &state)
{
    Device dev;
    std::uint64_t addr = 0;
    Tick lat = 0;
    const std::uint64_t wrap =
        PramGeometry::paperDefault().moduleBytes() / 2;
    for (auto _ : state) {
        lat = dev.fullRead(addr);
        addr = (addr + 32 * 16 * 256) % wrap; // avoid row-buffer hits
    }
    state.counters["simReadNs"] = toNs(lat);
}
BENCHMARK(BM_ThreePhaseRead);

static void
BM_OverwriteProgram(benchmark::State &state)
{
    Device dev;
    std::array<std::uint8_t, 32> data;
    data.fill(0x5A);
    std::uint64_t word = 0;
    const std::uint64_t wrap =
        PramGeometry::paperDefault().moduleBytes() / 64;
    Tick lat = 0;
    for (auto _ : state) {
        lat = dev.programWord(word, data.data());
        word = (word + 16) % wrap; // stay in partition 0, fresh rows
    }
    state.counters["simOverwriteUs"] = toUs(lat);
}
BENCHMARK(BM_OverwriteProgram);

static void
BM_SetOnlyProgramAfterPreErase(benchmark::State &state)
{
    Device dev;
    std::array<std::uint8_t, 32> zeros{};
    std::array<std::uint8_t, 32> data;
    data.fill(0x77);
    std::uint64_t word = 0;
    const std::uint64_t wrap =
        PramGeometry::paperDefault().moduleBytes() / 64;
    Tick lat = 0;
    for (auto _ : state) {
        state.PauseTiming();
        dev.programWord(word, zeros.data()); // selective pre-erase
        state.ResumeTiming();
        lat = dev.programWord(word, data.data());
        word = (word + 16) % wrap;
    }
    state.counters["simSetOnlyUs"] = toUs(lat);
}
BENCHMARK(BM_SetOnlyProgramAfterPreErase);

static void
BM_EventQueueThroughput(benchmark::State &state)
{
    // Raw kernel speed: how many events per second the simulator
    // sustains (matters for large sweeps).
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "noop");
    std::uint64_t n = 0;
    for (auto _ : state) {
        eq.schedule(&ev, eq.curTick() + 1);
        eq.run();
        ++n;
    }
    state.SetItemsProcessed(std::int64_t(n));
}
BENCHMARK(BM_EventQueueThroughput);

BENCHMARK_MAIN();
