/**
 * @file
 * Figure 13: data-processing bandwidth of the four PRAM subsystem
 * scheduler configurations — Bare-metal (noop), Interleaving,
 * selective-erasing, and Final — across Polybench, with each
 * workload's write ratio. The paper reports Interleaving up to +54%
 * (trmm), selective-erasing +57% on the write-bound kernels, and
 * Final +77% on average.
 */

#include <cstdio>

#include "harness.hh"

using namespace dramless;

int
main()
{
    auto opts = bench::defaultOptions();
    std::printf("Figure 13: scheduler configurations on DRAM-less "
                "(scale %.2f)\n\n",
                opts.workloadScale);
    std::printf("%-8s %7s %10s %12s %12s %10s | %7s %7s %7s\n",
                "kernel", "wr%", "Bare MB/s", "Interleave",
                "sel-erase", "Final", "I/B", "S/B", "F/B");
    std::printf("%.*s\n", 92,
                "--------------------------------------------------"
                "--------------------------------------------------");

    using systems::IntegratedKind;
    struct Variant
    {
        IntegratedKind kind;
        const char *label;
    };
    const Variant variants[] = {
        {IntegratedKind::dramLessBareMetal, "Bare-metal"},
        {IntegratedKind::dramLessInterleaving, "Interleaving"},
        {IntegratedKind::dramLessSelectiveErase, "sel-erase"},
        {IntegratedKind::dramLess, "Final"},
    };

    // One independent job per (workload, scheduler variant) pair.
    std::vector<runner::SweepJob> jobs;
    for (const auto &spec : workload::Polybench::all()) {
        for (const Variant &v : variants) {
            jobs.push_back(runner::SweepJob{
                v.label, spec.name, [v, spec, opts]() {
                    auto sys =
                        systems::SystemFactory::createDramLessVariant(
                            v.kind, opts);
                    return sys->run(spec);
                }});
        }
    }
    std::vector<systems::RunResult> results = bench::runJobs(jobs);

    auto sink = bench::makeSink(
        "fig13_scheduler",
        "Figure 13: scheduler configurations on DRAM-less", opts);
    // Key exported runs by the variant label, not the (identical)
    // underlying system name.
    for (std::size_t i = 0; i < results.size(); ++i) {
        systems::RunResult r = results[i];
        r.system = jobs[i].system;
        sink.add(r);
    }

    std::vector<double> gain_i, gain_s, gain_f;
    std::size_t idx = 0;
    for (const auto &spec : workload::Polybench::all()) {
        double bw[4] = {0, 0, 0, 0};
        for (int v = 0; v < 4; ++v)
            bw[v] = results[idx++].bandwidthMBps;
        gain_i.push_back(bw[1] / bw[0]);
        gain_s.push_back(bw[2] / bw[0]);
        gain_f.push_back(bw[3] / bw[0]);
        std::printf("%-8s %6.0f%% %10.1f %12.1f %12.1f %10.1f |"
                    " %6.2fx %6.2fx %6.2fx\n",
                    spec.name.c_str(), spec.writeRatio() * 100,
                    bw[0], bw[1], bw[2], bw[3], bw[1] / bw[0],
                    bw[2] / bw[0], bw[3] / bw[0]);
    }
    std::printf("%.*s\n", 92,
                "--------------------------------------------------"
                "--------------------------------------------------");
    std::printf("%-8s %s %49.2fx %6.2fx %6.2fx\n", "geomean", "",
                stats::geomean(gain_i), stats::geomean(gain_s),
                stats::geomean(gain_f));
    std::printf("\npaper shapes: Interleaving helps strided/read "
                "kernels most (trmm +54%%);\nselective-erasing helps "
                "the overwrite-bound kernels; Final wins "
                "everywhere.\n");

    sink.metric("gm_gain_interleaving", stats::geomean(gain_i));
    sink.metric("gm_gain_selective_erase", stats::geomean(gain_s));
    sink.metric("gm_gain_final", stats::geomean(gain_f));
    sink.exportFromEnv();
    return 0;
}
