/**
 * @file
 * Controller micro-benchmarks (google-benchmark).
 *
 * Two things are measured at once: wall-clock simulator throughput
 * (the benchmark timings — events/second matter for a simulator),
 * and the *simulated* latencies/bandwidths of the controller, which
 * are exposed as counters on each benchmark:
 *
 *   simReadNs   — simulated latency of a 32 B read (three-phase)
 *   simHitNs    — the same read when the row buffers hit
 *   simWriteUs  — simulated durable latency of a 32 B overwrite
 *   simBwMBps   — simulated channel bandwidth for the access mix
 *
 * Section V claims verified here: phase skipping cuts the read
 * latency by ~tRP+tRCD; interleaving hides access latency behind
 * transfers; selective erasing turns overwrites into SET-only
 * programs.
 */

#include <benchmark/benchmark.h>

#include "ctrl/channel_controller.hh"
#include "sim/random.hh"

using namespace dramless;

namespace
{

struct Channel
{
    EventQueue eq;
    std::unique_ptr<ctrl::ChannelController> ctl;
    Tick lastDone = 0;

    explicit Channel(const ctrl::SchedulerConfig &cfg,
                     std::uint32_t modules = 16)
    {
        setQuiet(true);
        ctl = std::make_unique<ctrl::ChannelController>(
            eq, modules, pram::PramGeometry::paperDefault(),
            pram::PramTiming::paperDefault(), cfg, "ch",
            /*functional=*/false);
        ctl->setCallback([this](const ctrl::MemResponse &r) {
            lastDone = r.completedAt;
        });
    }

    Tick
    readOnce(std::uint64_t addr, std::uint32_t size)
    {
        Tick start = eq.curTick();
        ctrl::MemRequest req;
        req.kind = ctrl::ReqKind::read;
        req.addr = addr;
        req.size = size;
        ctl->enqueue(req);
        eq.run();
        return lastDone - start;
    }

    Tick
    writeOnce(std::uint64_t addr, std::uint32_t size)
    {
        Tick start = eq.curTick();
        ctrl::MemRequest req;
        req.kind = ctrl::ReqKind::write;
        req.addr = addr;
        req.size = size;
        ctl->enqueue(req);
        eq.run();
        return lastDone - start;
    }
};

} // anonymous namespace

static void
BM_ColdRead32B(benchmark::State &state)
{
    Channel ch(ctrl::SchedulerConfig::finalConfig());
    std::uint64_t addr = 0;
    Tick lat = 0;
    for (auto _ : state) {
        // March across partitions so every read is cold.
        lat = ch.readOnce(addr, 32);
        addr = (addr + 32 * 16 * 16) % (1u << 30);
    }
    state.counters["simReadNs"] = toNs(lat);
}
BENCHMARK(BM_ColdRead32B);

static void
BM_RowBufferHitRead32B(benchmark::State &state)
{
    Channel ch(ctrl::SchedulerConfig::finalConfig());
    ch.readOnce(0, 32); // warm the RAB/RDB
    Tick lat = 0;
    for (auto _ : state)
        lat = ch.readOnce(0, 32);
    state.counters["simHitNs"] = toNs(lat);
    state.counters["skips"] = double(
        ch.ctl->ctrlStats().activatesSkipped);
}
BENCHMARK(BM_RowBufferHitRead32B);

static void
BM_Overwrite32B(benchmark::State &state)
{
    Channel ch(ctrl::SchedulerConfig::finalConfig());
    Tick lat = 0;
    std::uint64_t addr = 0;
    for (auto _ : state) {
        lat = ch.writeOnce(addr, 32);
        addr = (addr + 32) % (1 << 20);
    }
    state.counters["simWriteUs"] = toUs(lat);
}
BENCHMARK(BM_Overwrite32B);

static void
BM_PreErasedWrite32B(benchmark::State &state)
{
    Channel ch(ctrl::SchedulerConfig::finalConfig());
    std::uint64_t addr = 0;
    Tick lat = 0;
    for (auto _ : state) {
        state.PauseTiming();
        ch.ctl->hintFutureWrite(addr, 32);
        ch.eq.run(); // zero-fill executes while idle
        ch.eq.runUntil(ch.ctl->module(0).programBusyUntil());
        state.ResumeTiming();
        lat = ch.writeOnce(addr, 32);
        addr = (addr + 32 * 16) % (1u << 30); // fresh module-0 word
    }
    state.counters["simWriteUs"] = toUs(lat);
}
BENCHMARK(BM_PreErasedWrite32B);

static void
BM_StreamBandwidth(benchmark::State &state)
{
    // Simulated channel bandwidth for a 512 B streaming read mix
    // under the chosen scheduler (0 = Bare-metal, 1 = Final).
    ctrl::SchedulerConfig cfg =
        state.range(0) == 0 ? ctrl::SchedulerConfig::bareMetal()
                            : ctrl::SchedulerConfig::finalConfig();
    Channel ch(cfg);
    std::uint64_t addr = 0;
    std::uint64_t bytes = 0;
    Tick sim_start = ch.eq.curTick();
    for (auto _ : state) {
        for (int i = 0; i < 8; ++i) {
            ctrl::MemRequest req;
            req.kind = ctrl::ReqKind::read;
            req.addr = addr;
            req.size = 512;
            ch.ctl->enqueue(req);
            addr = (addr + 512) % (1u << 30);
            bytes += 512;
        }
        ch.eq.run();
    }
    double sim_sec = toSec(ch.eq.curTick() - sim_start);
    state.counters["simBwMBps"] = double(bytes) / sim_sec / 1e6;
    state.counters["simEvents"] = double(ch.eq.numProcessed());
}
BENCHMARK(BM_StreamBandwidth)->Arg(0)->Arg(1);

BENCHMARK_MAIN();
