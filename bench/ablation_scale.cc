/**
 * @file
 * Scale-sensitivity check: the reproduction runs scaled-down data
 * volumes (the paper used multi-GB runs), so the methodology relies
 * on the headline *ratios* being stable across scale. This bench
 * sweeps the volume scale and reports the key Figure 15 ratios at
 * each point.
 */

#include <cstdio>

#include "harness.hh"

using namespace dramless;

int
main()
{
    setQuiet(true);
    const char *kernels[] = {"gemver", "doitg", "trmm", "durbin"};
    const systems::SystemKind kinds[] = {
        systems::SystemKind::hetero,
        systems::SystemKind::heterodirect,
        systems::SystemKind::integratedSlc,
        systems::SystemKind::dramLess,
    };

    std::printf("Scale sensitivity of the headline ratios "
                "(geomean over gemver/doitg/trmm/durbin)\n\n");
    std::printf("%-8s %16s %16s %16s\n", "scale", "DL/Hetero",
                "DL/Heterodirect", "DL/Int-SLC");
    std::printf("%.*s\n", 58,
                "--------------------------------------------------"
                "--------");

    for (double scale : {0.1, 0.25, 0.5}) {
        systems::SystemOptions opts;
        opts.workloadScale = scale;
        std::map<std::string, std::map<std::string, double>> bw;
        for (auto kind : kinds) {
            const char *label = systems::SystemFactory::label(kind);
            for (const char *wl : kernels) {
                std::fprintf(stderr, "  scale %.2f %-18s %-8s\r",
                             scale, label, wl);
                std::fflush(stderr);
                auto sys = systems::SystemFactory::create(kind, opts);
                bw[label][wl] =
                    sys->run(workload::Polybench::byName(wl))
                        .bandwidthMBps;
            }
        }
        auto ratio = [&](const char *a, const char *b) {
            std::vector<double> r;
            for (const char *wl : kernels)
                r.push_back(bw[a][wl] / bw[b][wl]);
            return stats::geomean(r);
        };
        std::printf("%-8.2f %16.2f %16.2f %16.2f\n", scale,
                    ratio("DRAM-less", "Hetero"),
                    ratio("DRAM-less", "Heterodirect"),
                    ratio("DRAM-less", "Integrated-SLC"));
    }
    std::fprintf(stderr, "%-48s\r", "");
    std::printf("\nstable ratios across scale justify running the "
                "reproduction at reduced volumes\n(buffer capacities "
                "scale with the workload to preserve data:buffer "
                "ratios).\n");
    return 0;
}
