/**
 * @file
 * Scale-sensitivity check: the reproduction runs scaled-down data
 * volumes (the paper used multi-GB runs), so the methodology relies
 * on the headline *ratios* being stable across scale. This bench
 * sweeps the volume scale and reports the key Figure 15 ratios at
 * each point; all (scale, system, workload) runs execute as one
 * parallel sweep.
 */

#include <cstdio>

#include "harness.hh"

using namespace dramless;

int
main()
{
    setQuiet(true);
    const char *kernels[] = {"gemver", "doitg", "trmm", "durbin"};
    const systems::SystemKind kinds[] = {
        systems::SystemKind::hetero,
        systems::SystemKind::heterodirect,
        systems::SystemKind::integratedSlc,
        systems::SystemKind::dramLess,
    };
    const double scales[] = {0.1, 0.25, 0.5};

    std::vector<runner::SweepJob> jobs;
    for (double scale : scales) {
        systems::SystemOptions opts;
        opts.workloadScale = scale;
        for (auto kind : kinds) {
            for (const char *wl : kernels) {
                auto job = runner::makeJob(
                    kind, workload::Polybench::byName(wl), opts);
                // Distinguish scales in the progress line.
                job.system = std::string(
                                 systems::SystemFactory::label(kind)) +
                             "@" + std::to_string(scale);
                jobs.push_back(std::move(job));
            }
        }
    }
    std::vector<systems::RunResult> results = bench::runJobs(jobs);

    systems::SystemOptions defaults;
    auto sink = bench::makeSink(
        "ablation_scale",
        "Scale sensitivity of the headline ratios", defaults);

    std::printf("Scale sensitivity of the headline ratios "
                "(geomean over gemver/doitg/trmm/durbin)\n\n");
    std::printf("%-8s %16s %16s %16s\n", "scale", "DL/Hetero",
                "DL/Heterodirect", "DL/Int-SLC");
    std::printf("%.*s\n", 58,
                "--------------------------------------------------"
                "--------");

    std::size_t idx = 0;
    for (double scale : scales) {
        std::map<std::string, std::map<std::string, double>> bw;
        for (auto kind : kinds) {
            const char *label = systems::SystemFactory::label(kind);
            for (const char *wl : kernels)
                bw[label][wl] = results[idx++].bandwidthMBps;
        }
        auto ratio = [&](const char *a, const char *b) {
            std::vector<double> r;
            for (const char *wl : kernels)
                r.push_back(bw[a][wl] / bw[b][wl]);
            return stats::geomean(r);
        };
        double dl_hetero = ratio("DRAM-less", "Hetero");
        double dl_hd = ratio("DRAM-less", "Heterodirect");
        double dl_slc = ratio("DRAM-less", "Integrated-SLC");
        std::printf("%-8.2f %16.2f %16.2f %16.2f\n", scale,
                    dl_hetero, dl_hd, dl_slc);
        char key[64];
        std::snprintf(key, sizeof(key), "scale_%g", scale);
        sink.metric(std::string(key) + "/dl_over_hetero", dl_hetero);
        sink.metric(std::string(key) + "/dl_over_heterodirect",
                    dl_hd);
        sink.metric(std::string(key) + "/dl_over_integrated_slc",
                    dl_slc);
    }
    std::printf("\nstable ratios across scale justify running the "
                "reproduction at reduced volumes\n(buffer capacities "
                "scale with the workload to preserve data:buffer "
                "ratios).\n");
    sink.exportFromEnv();
    return 0;
}
